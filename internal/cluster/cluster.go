// Package cluster fans compilation batches across a fleet of compilation
// servers: the third Backend implementation, after the in-process engine
// (internal/driver) and the single-server client. Each job is routed by
// consistent hashing on the *canonical* fingerprint component of its
// JobKey — the isomorphism-invariant digest, so renamed/reordered clones
// of one loop always land on the same node and hit that node's semantic
// cache tier instead of recompiling. Around that affinity core sit the
// fleet mechanics: health-checked membership (periodic probes with jitter,
// eject on dispatch failure, readmit on recovery), per-node in-flight
// windows with work stealing when a node drains or falls behind, hedged
// dispatch for stragglers (a second send after a latency-percentile delay;
// first answer wins, the loser is cancelled — results are content-addressed
// and deterministic, so a duplicated compilation is only wasted heat, never
// a wrong answer), and transport-aware failover that distinguishes "the
// node could not answer" (retry elsewhere) from "the job failed to compile"
// (a legitimate, deterministic outcome that every node would reproduce).
//
// The public constructor is clusched.NewCluster; this package keeps the
// mechanics testable against in-process fakes.
package cluster

import (
	"context"
	"fmt"
	"iter"
	"log/slog"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clusched/internal/driver"
	"clusched/internal/pipeline"
	"clusched/internal/telemetry"
	"clusched/internal/wire"
)

// Member names one node of the fleet. Name is the routing identity: ring
// positions derive from it, so renaming a node reshuffles its shard.
type Member struct {
	Name string
	Node Node
}

// Config parameterizes a Cluster.
type Config struct {
	// Members is the fleet; at least one is required.
	Members []Member
	// NodeInFlight bounds concurrent dispatches per member (the per-node
	// window work stealing balances against); ≤0 means DefaultNodeInFlight.
	NodeInFlight int
	// Hedge controls straggler hedging: 0 (default) adapts the hedge delay
	// to a high percentile of observed dispatch latency, >0 fixes the
	// delay, <0 disables hedging.
	Hedge time.Duration
	// HealthInterval paces the membership probes (jittered ±20%); 0 means
	// DefaultHealthInterval, <0 disables probing (members are then only
	// ejected by dispatch failures and readmitted by the next probe-free
	// recovery path: a successful failover send).
	HealthInterval time.Duration
	// Registry receives the cluster's per-node instruments; nil creates a
	// private registry (exposed via Registry()).
	Registry *telemetry.Registry
	// Logger receives membership transitions and hedge/steal diagnostics;
	// nil discards them.
	Logger *slog.Logger
}

// Defaults for Config zero values.
const (
	DefaultNodeInFlight   = 4
	DefaultHealthInterval = 2 * time.Second
)

// Hedging tuning: the adaptive delay is hedgeFactor × the p95 of recent
// successful dispatch latencies, floored so microsecond-fast fleets do not
// hedge every job, and it needs hedgeMinSamples observations before the
// first hedge can fire.
const (
	hedgeFactor     = 4
	hedgeFloor      = 10 * time.Millisecond
	hedgeMinSamples = 16
	latWindow       = 64
)

// routeLoadFactor is the bounded-load constant: at batch routing time no
// member is assigned more than routeLoadFactor × the even share before the
// walk spills to the next node on the ring.
const routeLoadFactor = 1.25

// member is the live state behind a Member.
type member struct {
	name string
	node Node

	up       atomic.Bool
	inflight atomic.Int64

	jobs        atomic.Uint64
	steals      atomic.Uint64
	hedgesFired atomic.Uint64
	hedgesWon   atomic.Uint64
	ejections   atomic.Uint64
	lastErr     atomic.Value // string
}

func (m *member) healthy() bool { return m.up.Load() }

// Cluster is the fleet backend. It satisfies the public Backend contract
// structurally (Compile + Stream in driver types); clusched.NewCluster
// pins that at compile time.
type Cluster struct {
	members      []*member
	ring         *ring
	nodeInFlight int
	hedge        time.Duration
	logger       *slog.Logger

	registry *telemetry.Registry
	metrics  clusterMetrics

	latMu  sync.Mutex
	lat    [latWindow]time.Duration
	latN   int // total samples observed
	closed chan struct{}
	once   sync.Once
}

type clusterMetrics struct {
	jobs        *telemetry.CounterVec
	steals      *telemetry.CounterVec
	hedgesFired *telemetry.CounterVec
	hedgesWon   *telemetry.CounterVec
	ejections   *telemetry.CounterVec
	failovers   *telemetry.CounterVec
}

// New builds a Cluster over the members and starts its membership loop.
// Callers must Close it when done.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("cluster: no members")
	}
	names := make(map[string]bool, len(cfg.Members))
	c := &Cluster{
		nodeInFlight: cfg.NodeInFlight,
		hedge:        cfg.Hedge,
		logger:       cfg.Logger,
		registry:     cfg.Registry,
		closed:       make(chan struct{}),
	}
	if c.nodeInFlight <= 0 {
		c.nodeInFlight = DefaultNodeInFlight
	}
	if c.logger == nil {
		c.logger = slog.New(slog.DiscardHandler)
	}
	if c.registry == nil {
		c.registry = telemetry.NewRegistry()
	}
	for _, mm := range cfg.Members {
		if mm.Name == "" || mm.Node == nil {
			return nil, fmt.Errorf("cluster: member needs a name and a node")
		}
		if names[mm.Name] {
			return nil, fmt.Errorf("cluster: duplicate member %q", mm.Name)
		}
		names[mm.Name] = true
		m := &member{name: mm.Name, node: mm.Node}
		m.up.Store(true)
		c.members = append(c.members, m)
	}
	c.ring = newRing(c.members)
	reg := c.registry
	c.metrics = clusterMetrics{
		jobs: reg.NewCounterVec("clusched_cluster_jobs_total",
			"Jobs dispatched and answered, by node.", "node"),
		steals: reg.NewCounterVec("clusched_cluster_steals_total",
			"Jobs stolen from another node's queue, by the thief node.", "node"),
		hedgesFired: reg.NewCounterVec("clusched_cluster_hedges_fired_total",
			"Hedged duplicate dispatches fired against a slow primary, by primary node.", "node"),
		hedgesWon: reg.NewCounterVec("clusched_cluster_hedges_won_total",
			"Hedges whose duplicate answered first, by primary node.", "node"),
		ejections: reg.NewCounterVec("clusched_cluster_ejections_total",
			"Membership ejections after dispatch failures or failed probes, by node.", "node"),
		failovers: reg.NewCounterVec("clusched_cluster_failovers_total",
			"Jobs rerouted to another member after a transport failure, by failed node.", "node"),
	}
	reg.NewGaugeFunc("clusched_cluster_members",
		"Configured fleet size.",
		func() float64 { return float64(len(c.members)) })
	reg.NewGaugeFunc("clusched_cluster_members_healthy",
		"Members currently considered healthy.",
		func() float64 {
			n := 0
			for _, m := range c.members {
				if m.healthy() {
					n++
				}
			}
			return float64(n)
		})
	interval := cfg.HealthInterval
	if interval == 0 {
		interval = DefaultHealthInterval
	}
	if interval > 0 {
		go c.healthLoop(interval)
	}
	return c, nil
}

// Registry exposes the cluster's metric registry (per-node dispatch, steal,
// hedge and ejection counters, plus membership gauges).
func (c *Cluster) Registry() *telemetry.Registry { return c.registry }

// Close stops the membership loop. In-flight Streams finish on their own.
func (c *Cluster) Close() { c.once.Do(func() { close(c.closed) }) }

// healthLoop probes every member on a jittered cadence: ±20% around the
// interval, so a fleet of clients probing the same servers spreads out
// instead of thundering in lockstep.
func (c *Cluster) healthLoop(interval time.Duration) {
	for {
		wait := time.Duration(float64(interval) * (0.8 + 0.4*rand.Float64()))
		select {
		case <-c.closed:
			return
		case <-time.After(wait):
		}
		probeTimeout := min(interval, 2*time.Second)
		var wg sync.WaitGroup
		for _, m := range c.members {
			wg.Add(1)
			go func(m *member) {
				defer wg.Done()
				c.probe(m, probeTimeout)
			}(m)
		}
		wg.Wait()
	}
}

// probe checks one member and flips its membership accordingly. Members
// whose node cannot be probed are optimistically readmitted: their next
// dispatch failure ejects them again, and without a probe there is no
// other road back in.
func (c *Cluster) probe(m *member, timeout time.Duration) {
	hc, ok := m.node.(HealthChecker)
	if !ok {
		m.up.Store(true)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := hc.Health(ctx)
	was := m.up.Swap(err == nil)
	switch {
	case was && err != nil:
		m.ejections.Add(1)
		m.lastErr.Store(err.Error())
		c.metrics.ejections.With(m.name).Inc()
		c.logger.Warn("cluster: member ejected by probe", "node", m.name, "error", err)
	case !was && err == nil:
		c.logger.Info("cluster: member readmitted", "node", m.name)
	}
}

// eject benches a member after a dispatch failure (the probe loop readmits
// it once it answers again).
func (c *Cluster) eject(m *member, err error) {
	if m.up.Swap(false) {
		m.ejections.Add(1)
		m.lastErr.Store(err.Error())
		c.metrics.ejections.With(m.name).Inc()
		c.logger.Warn("cluster: member ejected by dispatch failure", "node", m.name, "error", err)
	}
}

// routeKey is the consistent-hash key of a job: the canonical fingerprint —
// the same component JobKey v3 is keyed on — finalized through splitmix64.
// Isomorphic clones share a canonical fingerprint, so they share a node,
// which is exactly what keeps the per-node semantic cache tiers hot.
func routeKey(j driver.Job) uint64 {
	return splitmix64(j.Graph.CanonicalFingerprint())
}

// routeOne picks the home member for a single job: the ring successor,
// skipping unhealthy or saturated members (bounded by the in-flight window).
func (c *Cluster) routeOne(j driver.Job) *member {
	return c.ring.lookup(routeKey(j), func(m *member) bool {
		return m.healthy() && m.inflight.Load() < int64(c.nodeInFlight)
	})
}

// Compile dispatches one job to its home node — the unary half of the
// Backend contract.
func (c *Cluster) Compile(ctx context.Context, j driver.Job) (*pipeline.Result, error) {
	out := c.dispatch(ctx, c.routeOne(j), j)
	return out.Result, out.Err
}

// route assigns every job of a batch to a member queue: ring successor by
// canonical fingerprint, bounded-load spill when a shard would exceed
// routeLoadFactor × the even share, unhealthy members skipped entirely.
func (c *Cluster) route(jobs []driver.Job) map[*member][]int {
	assign := make(map[*member][]int, len(c.members))
	healthy := 0
	for _, m := range c.members {
		if m.healthy() {
			healthy++
		}
	}
	if healthy == 0 {
		healthy = len(c.members)
	}
	bound := int(routeLoadFactor*float64(len(jobs))/float64(healthy)) + 1
	for i, j := range jobs {
		m := c.ring.lookup(routeKey(j), func(m *member) bool {
			return m.healthy() && len(assign[m]) < bound
		})
		assign[m] = append(assign[m], i)
	}
	return assign
}

// Stream implements the Backend batch contract over the fleet. Each member
// runs a window of NodeInFlight dispatch workers over its routed queue;
// a worker whose queue drains steals from the tail of the longest backlog
// that exceeds the in-flight window (the job its home node would have
// reached last — the cheapest affinity to sacrifice; shorter queues are
// left to their home node, which already has them in flight). Every job yields exactly once, tagged with its index;
// cancelling ctx mid-stream stamps the remaining jobs with the
// cancellation; stopping the iteration early abandons the remaining work.
func (c *Cluster) Stream(ctx context.Context, jobs []driver.Job) iter.Seq2[int, driver.Outcome] {
	return func(yield func(int, driver.Outcome) bool) {
		if len(jobs) == 0 {
			return
		}
		sctx, cancel := context.WithCancel(ctx)
		defer cancel()

		assign := c.route(jobs)
		b := &batchState{queues: assign, order: c.members, stealFloor: c.nodeInFlight}

		type indexed struct {
			i   int
			out driver.Outcome
		}
		// Unbuffered on purpose, exactly like the local engine: a worker
		// hands its outcome to the consumer before taking more work, so
		// the first yield happens while the rest of the batch is still
		// compiling — the streaming guarantee the conformance suite pins.
		results := make(chan indexed)
		var wg sync.WaitGroup
		for _, m := range c.members {
			for w := 0; w < c.nodeInFlight; w++ {
				wg.Add(1)
				go func(m *member) {
					defer wg.Done()
					for {
						i, ok := b.next(m)
						if !ok {
							return
						}
						out := c.dispatch(sctx, m, jobs[i])
						results <- indexed{i, out}
					}
				}(m)
			}
		}
		go func() {
			wg.Wait()
			close(results)
		}()

		// The drain runs on every early exit from the range below — yield
		// returning false, a consumer panic, or runtime.Goexit — so workers
		// blocked on the unbuffered send always wind down (the deferred
		// cancel aborts their in-flight dispatches first).
		drained := false
		defer func() {
			cancel()
			if !drained {
				go func() {
					for range results {
					}
				}()
			}
		}()
		for r := range results {
			if !yield(r.i, r.out) {
				return
			}
		}
		drained = true
	}
}

// batchState is the mutable routing state of one Stream call: per-member
// queues plus the steal scan.
type batchState struct {
	mu     sync.Mutex
	queues map[*member][]int
	order  []*member
	// stealFloor is the backlog a victim must exceed before an idle member
	// may steal from it: a queue no longer than the in-flight window is
	// already fully dispatchable by its home node, so stealing it would
	// trade cache affinity for nothing. Only genuine backlogs — a slow or
	// dead node falling behind its shard — are rebalanced.
	stealFloor int
}

// next pops the member's own queue, or steals from the tail of the longest
// other backlog past the steal floor. It returns false when no stealable
// work remains anywhere — failover happens inside dispatch, so queues never
// refill, and sub-floor remainders drain at their home node.
func (b *batchState) next(m *member) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if q := b.queues[m]; len(q) > 0 {
		i := q[0]
		b.queues[m] = q[1:]
		return i, true
	}
	var victim *member
	best := b.stealFloor
	for _, o := range b.order {
		if o != m && len(b.queues[o]) > best {
			victim, best = o, len(b.queues[o])
		}
	}
	if victim == nil {
		return 0, false
	}
	q := b.queues[victim]
	i := q[len(q)-1]
	b.queues[victim] = q[:len(q)-1]
	m.steals.Add(1)
	return i, true
}

// dispatch serves one job to a final outcome: try the home member (hedged),
// and on a retryable transport failure eject it and fail over — each member
// is tried at most once, and a compilation error inside a successful
// exchange is final (it is deterministic; every node would reproduce it).
func (c *Cluster) dispatch(ctx context.Context, home *member, j driver.Job) driver.Outcome {
	if err := ctx.Err(); err != nil {
		return driver.Outcome{Job: j, Err: err}
	}
	m := home
	tried := make(map[*member]bool, 2)
	if m == nil || !m.healthy() {
		if alt := c.pick(tried, m); alt != nil {
			m = alt
		}
	}
	if m == nil { // no members at all cannot happen (New requires ≥1); belt and braces
		return driver.Outcome{Job: j, Err: fmt.Errorf("cluster: no member to dispatch to")}
	}
	var firstErr error
	for {
		tried[m] = true
		out, err := c.tryNode(ctx, m, j)
		if err == nil {
			return out
		}
		if cerr := ctx.Err(); cerr != nil {
			return driver.Outcome{Job: j, Err: cerr}
		}
		if !retryable(err) {
			return driver.Outcome{Job: j, Err: err}
		}
		c.eject(m, err)
		c.metrics.failovers.With(m.name).Inc()
		if firstErr == nil {
			firstErr = err
		}
		next := c.pick(tried, nil)
		if next == nil {
			return driver.Outcome{Job: j, Err: fmt.Errorf("cluster: job failed on every reachable member: %w", firstErr)}
		}
		c.logger.Debug("cluster: failover", "from", m.name, "to", next.name)
		m = next
	}
}

// pick selects a failover or reroute target: the least-loaded healthy
// untried member, falling back to any untried member (a just-ejected node
// may still be the only one left).
func (c *Cluster) pick(tried map[*member]bool, exclude *member) *member {
	var best *member
	healthyBest := false
	for _, m := range c.members {
		if tried[m] || m == exclude {
			continue
		}
		h := m.healthy()
		switch {
		case best == nil,
			h && !healthyBest,
			h == healthyBest && m.inflight.Load() < best.inflight.Load():
			best, healthyBest = m, h
		}
	}
	return best
}

// tryNode sends the job to one member, hedging a duplicate onto a peer if
// the primary exceeds the hedge delay. The first answer wins and the loser
// is cancelled; results are content-addressed and deterministic, so the
// duplicate can only waste work, never change the answer. A hedge win is
// counted against the slow primary.
func (c *Cluster) tryNode(ctx context.Context, m *member, j driver.Job) (driver.Outcome, error) {
	delay, hedging := c.hedgeDelay()
	var alt *member
	if hedging {
		alt = c.hedgePeer(m)
	}
	if alt == nil {
		return c.send(ctx, m, j)
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type reply struct {
		out   driver.Outcome
		err   error
		hedge bool
	}
	ch := make(chan reply, 2) // buffered: the loser must never leak
	go func() {
		out, err := c.send(hctx, m, j)
		ch <- reply{out, err, false}
	}()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	timerC := timer.C
	inflight := 1
	var firstErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				if r.hedge {
					m.hedgesWon.Add(1)
					c.metrics.hedgesWon.With(m.name).Inc()
				}
				cancel()
				return r.out, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inflight == 0 {
				return driver.Outcome{}, firstErr
			}
		case <-timerC:
			timerC = nil
			m.hedgesFired.Add(1)
			c.metrics.hedgesFired.With(m.name).Inc()
			c.logger.Debug("cluster: hedge fired", "primary", m.name, "hedge", alt.name, "delay", delay)
			inflight++
			go func() {
				out, err := c.send(hctx, alt, j)
				ch <- reply{out, err, true}
			}()
		}
	}
}

// hedgePeer picks where a hedge goes: the least-loaded healthy member other
// than the primary.
func (c *Cluster) hedgePeer(primary *member) *member {
	var best *member
	for _, m := range c.members {
		if m == primary || !m.healthy() {
			continue
		}
		if best == nil || m.inflight.Load() < best.inflight.Load() {
			best = m
		}
	}
	return best
}

// send is one accounted exchange with a member.
func (c *Cluster) send(ctx context.Context, m *member, j driver.Job) (driver.Outcome, error) {
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	t0 := time.Now()
	out, err := m.node.Do(ctx, j)
	if err == nil {
		m.jobs.Add(1)
		c.metrics.jobs.With(m.name).Inc()
		c.observeLatency(time.Since(t0))
		if !m.up.Load() {
			// A successful exchange is as good as a probe: readmit.
			m.up.Store(true)
			c.logger.Info("cluster: member readmitted by successful dispatch", "node", m.name)
		}
	}
	return out, err
}

// observeLatency feeds the hedge-delay estimator's sliding window.
func (c *Cluster) observeLatency(d time.Duration) {
	c.latMu.Lock()
	c.lat[c.latN%latWindow] = d
	c.latN++
	c.latMu.Unlock()
}

// hedgeDelay resolves the current hedge delay: fixed when configured,
// otherwise hedgeFactor × the p95 of the recent latency window (floored),
// and no hedging at all until enough samples exist — hedging against an
// unknown latency distribution would just double the traffic.
func (c *Cluster) hedgeDelay() (time.Duration, bool) {
	if c.hedge < 0 {
		return 0, false
	}
	if c.hedge > 0 {
		return c.hedge, true
	}
	c.latMu.Lock()
	n := c.latN
	if n < hedgeMinSamples {
		c.latMu.Unlock()
		return 0, false
	}
	if n > latWindow {
		n = latWindow
	}
	window := make([]time.Duration, n)
	copy(window, c.lat[:n])
	c.latMu.Unlock()
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	p95 := window[(len(window)*95)/100]
	d := p95 * hedgeFactor
	if d < hedgeFloor {
		d = hedgeFloor
	}
	return d, true
}

// NodeStats is one member's slice of the fleet rollup.
type NodeStats struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	// InFlight is the cluster's own dispatch window usage right now.
	InFlight int64 `json:"in_flight"`
	// Jobs counts exchanges this cluster completed against the node;
	// Steals the jobs this node took over from another's queue.
	Jobs   uint64 `json:"jobs"`
	Steals uint64 `json:"steals"`
	// HedgesFired/HedgesWon count hedges fired against this node as the
	// slow primary, and how many of those duplicates answered first.
	HedgesFired uint64 `json:"hedges_fired"`
	HedgesWon   uint64 `json:"hedges_won"`
	Ejections   uint64 `json:"ejections"`
	LastError   string `json:"last_error,omitempty"`
	// Service is the node's own /stats answer (queue depth, cache and
	// semantic-hit counters, per-strategy traffic); nil when the node
	// does not expose stats or did not answer (see ServiceError).
	Service      *wire.ServiceStats `json:"service,omitempty"`
	ServiceError string             `json:"service_error,omitempty"`
}

// FleetStats is the fleet-wide rollup: per-node detail plus sums of the
// numbers a capacity dashboard wants first.
type FleetStats struct {
	Nodes   []NodeStats `json:"nodes"`
	Healthy int         `json:"healthy"`
	// Jobs/Steals/HedgesFired/HedgesWon sum the cluster-side counters.
	Jobs        uint64 `json:"jobs"`
	Steals      uint64 `json:"steals"`
	HedgesFired uint64 `json:"hedges_fired"`
	HedgesWon   uint64 `json:"hedges_won"`
	// Queued and JobsCompiled sum the nodes' own service stats; the
	// semantic counters sum each shard's canonical-tier hits — the number
	// the affinity argument stands on.
	Queued            int    `json:"queued"`
	JobsCompiled      uint64 `json:"jobs_compiled"`
	SemanticHits      uint64 `json:"semantic_hits"`
	SemanticStoreHits uint64 `json:"semantic_store_hits"`
}

// FleetStats gathers the rollup, fanning /stats reads across the fleet
// concurrently (each bounded by ctx).
func (c *Cluster) FleetStats(ctx context.Context) FleetStats {
	fs := FleetStats{Nodes: make([]NodeStats, len(c.members))}
	var wg sync.WaitGroup
	for i, m := range c.members {
		ns := NodeStats{
			Name:        m.name,
			Healthy:     m.healthy(),
			InFlight:    m.inflight.Load(),
			Jobs:        m.jobs.Load(),
			Steals:      m.steals.Load(),
			HedgesFired: m.hedgesFired.Load(),
			HedgesWon:   m.hedgesWon.Load(),
			Ejections:   m.ejections.Load(),
		}
		if e, ok := m.lastErr.Load().(string); ok {
			ns.LastError = e
		}
		fs.Nodes[i] = ns
		if src, ok := m.node.(StatsSource); ok {
			wg.Add(1)
			go func(i int, src StatsSource) {
				defer wg.Done()
				st, err := src.Stats(ctx)
				if err != nil {
					fs.Nodes[i].ServiceError = err.Error()
					return
				}
				fs.Nodes[i].Service = &st
			}(i, src)
		}
	}
	wg.Wait()
	for i := range fs.Nodes {
		ns := &fs.Nodes[i]
		if ns.Healthy {
			fs.Healthy++
		}
		fs.Jobs += ns.Jobs
		fs.Steals += ns.Steals
		fs.HedgesFired += ns.HedgesFired
		fs.HedgesWon += ns.HedgesWon
		if ns.Service != nil {
			fs.Queued += ns.Service.Queued
			fs.JobsCompiled += ns.Service.JobsCompiled
			fs.SemanticHits += ns.Service.Cache.SemanticHits
			fs.SemanticStoreHits += ns.Service.Cache.SemanticStoreHits
		}
	}
	return fs
}
