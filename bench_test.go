package clusched_test

// One benchmark per table/figure of the paper's evaluation. Each benchmark
// recomputes its experiment from scratch (the suite cache is reset per
// iteration) and reports the headline numbers the paper quotes as custom
// metrics, so `go test -bench=.` regenerates the whole evaluation.

import (
	"context"
	"runtime"
	"testing"

	"clusched"
	"clusched/internal/ddg"
	"clusched/internal/experiments"
	"clusched/internal/machine"
	"clusched/internal/pipeline"
	"clusched/internal/workload"
)

// BenchmarkTable1Machine exercises the static machine model (Table 1).
func BenchmarkTable1Machine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1Causes regenerates the II-increase cause breakdown (Fig. 1:
// bus 70-90%, recurrences 2-4%, registers the rest).
func BenchmarkFig1Causes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		rows := experiments.Fig1()
		for _, r := range rows {
			if r.Config == "4c1b2l64r" {
				b.ReportMetric(r.BusPct, "bus_pct_4c1b2l")
				b.ReportMetric(r.RecPct, "rec_pct_4c1b2l")
				b.ReportMetric(r.RegPct, "reg_pct_4c1b2l")
			}
		}
	}
}

// BenchmarkFig7IPC regenerates the headline IPC comparison (Fig. 7: +25%
// average on 4c2b4l64r; su2cor up to +70%).
func BenchmarkFig7IPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		for _, f := range experiments.Fig7() {
			if f.Config == "4c2b4l64r" {
				b.ReportMetric(f.AvgSpeedup(), "avg_speedup_pct_4c2b4l")
				b.ReportMetric(f.Speedup("su2cor"), "su2cor_speedup_pct")
				b.ReportMetric(f.Speedup("tomcatv"), "tomcatv_speedup_pct")
				b.ReportMetric(f.Speedup("swim"), "swim_speedup_pct")
			}
		}
	}
}

// BenchmarkFig8Mgrid regenerates the mgrid unified-vs-clustered study
// (Fig. 8: clustered IPC close to the unified bound, replication benefit
// minimal).
func BenchmarkFig8Mgrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		rows := experiments.Fig8()
		unified := rows[0].Baseline
		worst := unified
		for _, r := range rows[1:] {
			if r.Replication < worst {
				worst = r.Replication
			}
		}
		b.ReportMetric(unified, "unified_ipc")
		b.ReportMetric(100*worst/unified, "worst_clustered_pct_of_unified")
	}
}

// BenchmarkFig9AppluII regenerates the applu II-reduction study (Fig. 9:
// replication cuts the II by 10-20%).
func BenchmarkFig9AppluII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		for _, r := range experiments.Fig9() {
			if r.Config == "4c1b2l64r" {
				b.ReportMetric(r.IIReductionPct, "ii_reduction_pct_4c1b2l")
				b.ReportMetric(r.IPCGainPct, "ipc_gain_pct_4c1b2l")
			}
		}
	}
}

// BenchmarkFig10AddedInstructions regenerates the replication-cost
// accounting (Fig. 10: below 5% added instructions for most
// configurations, integers dominate).
func BenchmarkFig10AddedInstructions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		for _, r := range experiments.Fig10() {
			if r.Config == "4c1b2l64r" {
				b.ReportMetric(r.TotalPct, "added_pct_4c1b2l")
				b.ReportMetric(r.Pct[ddg.ClassInt], "added_int_pct_4c1b2l")
			}
		}
	}
}

// BenchmarkFig12LengthPotential regenerates the zero-bus-latency upper
// bound (Fig. 12: ~1% potential on 4-cluster machines).
func BenchmarkFig12LengthPotential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		for _, r := range experiments.Fig12() {
			switch r.Config {
			case "4c1b2l64r":
				b.ReportMetric(r.PotentialPct(), "potential_pct_4c1b2l")
			case "2c1b2l64r":
				b.ReportMetric(r.PotentialPct(), "potential_pct_2c1b2l")
			}
		}
	}
}

// BenchmarkCommStats regenerates the §4 statistics (~36% of communications
// removed at ~2.1 replicated instructions each on 4c1b2l64r).
func BenchmarkCommStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		for _, r := range experiments.CommStats() {
			if r.Config == "4c1b2l64r" {
				b.ReportMetric(r.RemovedPct, "comms_removed_pct_4c1b2l")
				b.ReportMetric(r.InstrsPerComm, "instrs_per_removed_comm")
			}
		}
	}
}

// BenchmarkAblationMacro regenerates the §5.2 comparison (macro-node
// replication adds more instructions than the greedy heuristic).
func BenchmarkAblationMacro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		for _, r := range experiments.MacroAblation() {
			if r.Config == "4c1b2l64r" {
				b.ReportMetric(r.GreedyAddedPct, "greedy_added_pct")
				b.ReportMetric(r.MacroAddedPct, "macro_added_pct")
			}
		}
	}
}

// BenchmarkCompileAll measures batch-compilation throughput over the full
// 678-loop suite with the concurrent engine (loops/sec is the headline
// metric; caching is disabled so every iteration does real work). Compare
// against BenchmarkCompileAllSerial: on an N-core runner the engine should
// approach N× the serial rate — the scaling baseline for future PRs.
func BenchmarkCompileAll(b *testing.B) {
	benchmarkCompileAll(b, 0) // GOMAXPROCS workers
}

// BenchmarkCompileAllSerial is the single-worker reference for the
// parallel speedup of BenchmarkCompileAll.
func BenchmarkCompileAllSerial(b *testing.B) {
	benchmarkCompileAll(b, 1)
}

func benchmarkCompileAll(b *testing.B, workers int) {
	loops := workload.SPECfp95()
	m := machine.MustParse("4c2b2l64r")
	jobs := make([]clusched.CompileJob, len(loops))
	for i, l := range loops {
		jobs[i] = clusched.CompileJob{Graph: l.Graph, Machine: m, Opts: clusched.Options{Replicate: true}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp := clusched.NewCompiler(clusched.CompilerConfig{Workers: workers, CacheSize: -1})
		if _, err := comp.CompileAll(jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(loops))*float64(b.N)/b.Elapsed().Seconds(), "loops/sec")
}

// BenchmarkCompileSingleLoop measures raw pipeline throughput on one
// representative stencil loop (not a paper figure; a sanity baseline for
// the suite-level benchmarks above).
func BenchmarkCompileSingleLoop(b *testing.B) {
	l := workload.LoopsFor("su2cor")[0]
	m := machine.MustParse("4c2b2l64r")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clusched.CompileReplicated(l.Graph, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileHardLoop isolates single-compilation latency on the
// worst SPECfp95 loop — the one whose II search climbs the most on the
// bus-starved 4c1b2l64r configuration, i.e. the loop where failed
// attempts dominate the compile time. The linear/spec4 sub-benchmarks
// compare the plain ladder search against the speculative multi-II search
// with four lanes; the speculative one is skipped (not failed) on a
// single-CPU runner, where racing lanes cannot overlap and the comparison
// would be noise.
func BenchmarkCompileHardLoop(b *testing.B) {
	m := machine.MustParse("4c1b2l64r")
	opts := pipeline.Options{Replicate: true}
	var hard *ddg.Graph
	worst := -1
	for _, l := range workload.SPECfp95() {
		res, err := pipeline.Compile(l.Graph, m, opts)
		if err != nil {
			continue
		}
		bumps := 0
		for _, n := range res.IIIncreases {
			bumps += n
		}
		if bumps > worst {
			worst, hard = bumps, l.Graph
		}
	}
	if hard == nil {
		b.Fatal("no SPECfp95 loop compiles on 4c1b2l64r")
	}
	b.Logf("hard loop %s: %d II increases before acceptance", hard.Name, worst)

	b.Run("linear", func(b *testing.B) {
		arena := pipeline.NewArena()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pipeline.CompileContextArena(context.Background(), hard, m, opts, arena); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spec4", func(b *testing.B) {
		if runtime.GOMAXPROCS(0) <= 1 {
			b.Skip("GOMAXPROCS=1: speculative lanes cannot run concurrently, latency cannot differ from linear")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pipeline.CompileSpec(hard, m, opts, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationUnroll regenerates the §6 related-work comparison
// (unrolling removes communications but at prohibitive code growth).
func BenchmarkAblationUnroll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		row, err := experiments.UnrollAblation("4c1b2l64r", 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.UnrollIPC, "unroll_ipc")
		b.ReportMetric(row.ReplIPC, "replication_ipc")
		b.ReportMetric(row.UnrollCodeGrowthPct, "unroll_code_growth_pct")
	}
}

// BenchmarkAblationDesign measures the internal design-choice ablations
// (slack edge weights, SMS ordering) on a workload sample.
func BenchmarkAblationDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.DesignAblation("4c1b2l64r", 3)
		b.ReportMetric(r.SMSII, "sms_avg_ii")
		b.ReportMetric(r.TopoII, "topo_avg_ii")
	}
}
