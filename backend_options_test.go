package clusched

import (
	"strings"
	"testing"
	"time"
)

// mustPanic runs f and returns the panic message, failing if it ran clean.
func mustPanic(t *testing.T, f func()) string {
	t.Helper()
	defer func() { recover() }()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		f()
	}()
	if msg == "" {
		t.Fatal("expected a panic for a misgrouped option")
	}
	return msg
}

// TestOptionGroupsEnforced: an option handed to a constructor outside its
// group must fail loudly at construction, naming the option and its home —
// never be silently ignored (NewLocal(WithReplication(true)) quietly
// compiling without replication is the trap this closes).
func TestOptionGroupsEnforced(t *testing.T) {
	if msg := mustPanic(t, func() { NewLocal(WithReplication(true)) }); !strings.Contains(msg, "WithReplication") || !strings.Contains(msg, "NewLocal") {
		t.Fatalf("panic message unhelpful: %q", msg)
	}
	if msg := mustPanic(t, func() { NewOptions(WithWorkers(8)) }); !strings.Contains(msg, "WithWorkers") || !strings.Contains(msg, "NewOptions") {
		t.Fatalf("panic message unhelpful: %q", msg)
	}
	mustPanic(t, func() { NewRemote("http://x", WithStrategy("uas")) })
	mustPanic(t, func() { NewLocal(WithTimeout(time.Second)) })
	if msg := mustPanic(t, func() { NewOptions(WithSpeculation(4)) }); !strings.Contains(msg, "WithSpeculation") || !strings.Contains(msg, "NewOptions") {
		t.Fatalf("panic message unhelpful: %q", msg)
	}

	// Well-grouped options construct cleanly.
	opts := NewOptions(WithStrategy("uas"), WithMaxII(3))
	if opts.Strategy != "uas" || opts.MaxII != 3 {
		t.Fatalf("options not applied: %+v", opts)
	}
	if NewLocal(WithWorkers(2), WithCacheSize(8), WithSpeculation(4)) == nil {
		t.Fatal("NewLocal failed")
	}
	if NewRemote("http://x", WithTimeout(time.Second), WithPollInterval(time.Millisecond)) == nil {
		t.Fatal("NewRemote failed")
	}
}
