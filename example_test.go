package clusched_test

import (
	"fmt"
	"strings"

	"clusched"
)

// ExampleCompileReplicated compiles a small stencil loop for a 4-cluster
// machine and shows the headline effect of instruction replication: the
// excess communications disappear and the II drops back to the MII.
func ExampleCompileReplicated() {
	b := clusched.NewLoop("stencil")
	i0 := b.Node("i0", clusched.OpIAdd)
	b.Edge(i0, i0, 1)
	i1 := b.Node("i1", clusched.OpIAdd)
	i2 := b.Node("i2", clusched.OpIAdd)
	b.Edge(i0, i1, 0)
	b.Edge(i1, i2, 0)
	addr := []int{i0, i1, i2}
	for c := 0; c < 6; c++ {
		ld := b.Node(fmt.Sprintf("ld%d", c), clusched.OpLoad)
		b.Edge(addr[c%3], ld, 0)
		f := b.Node(fmt.Sprintf("f%d", c), clusched.OpFMul)
		b.Edge(ld, f, 0)
		b.Edge(addr[(c+1)%3], f, 0)
		g := b.Node(fmt.Sprintf("g%d", c), clusched.OpFAdd)
		b.Edge(f, g, 0)
		b.Edge(addr[(c+2)%3], g, 0)
		st := b.Node(fmt.Sprintf("st%d", c), clusched.OpStore)
		b.Edge(g, st, 0)
		b.Edge(addr[c%3], st, 0)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	m := clusched.MustParseMachine("4c1b2l64r")

	base, _ := clusched.CompileBaseline(g, m)
	repl, _ := clusched.CompileReplicated(g, m)
	fmt.Printf("baseline:    II=%d comms=%d\n", base.II, base.Comms)
	fmt.Printf("replication: II=%d comms=%d\n", repl.II, repl.Comms)
	// Output:
	// baseline:    II=8 comms=4
	// replication: II=4 comms=2
}

// ExampleParseLoops decodes a loop from the text format and schedules it.
func ExampleParseLoops() {
	text := `loop axpy
node i iadd
node x load
node m fmul
node s store
edge i i dist 1
edge i x
edge x m
edge m s
edge i s
end
`
	loops, err := clusched.ParseLoops(strings.NewReader(text))
	if err != nil {
		panic(err)
	}
	r, err := clusched.CompileReplicated(loops[0], clusched.UnifiedMachine(64))
	if err != nil {
		panic(err)
	}
	fmt.Printf("II=%d stages=%d\n", r.II, r.SC)
	// Output:
	// II=1 stages=11
}
