package clusched

// The Backend conformance suite: one shared harness run against both
// implementations — the in-process Compiler and the remote Client over a
// live service. It pins the contract the interface promises:
//
//   - bit-identical Results for the same job list (II, schedule
//     fingerprint, cause attribution), wherever the compilation ran;
//   - Stream delivers the first outcomes while the batch is verifiably
//     still compiling (on the remote backend that means over the NDJSON
//     push endpoint — a poll-based transport would deadlock this test,
//     not just slow it down);
//   - cancelling mid-stream leaves a clean prefix: every job yields
//     exactly once, finished outcomes are identical to an uncancelled
//     run, everything else carries the cancellation.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clusched/internal/service"
)

// gateStore is a Store whose Load blocks for selected loops until
// released: the deterministic way to hold one job of a batch open while
// the rest complete. It gates the local engine and the remote server
// through the same CompilerConfig.Store seam.
type gateStore struct {
	hold map[string]chan struct{}
}

func newGateStore(loops ...string) *gateStore {
	g := &gateStore{hold: map[string]chan struct{}{}}
	for _, l := range loops {
		g.hold[l] = make(chan struct{})
	}
	return g
}

func (g *gateStore) release(loop string) { close(g.hold[loop]) }

func (g *gateStore) Load(j CompileJob) (*Result, error, bool) {
	if ch, ok := g.hold[j.Graph.Name]; ok {
		<-ch
	}
	return nil, nil, false
}

func (g *gateStore) Save(CompileJob, *Result, error) {}

// backendCase builds one Backend implementation over a given engine
// config; the store gate and worker bound ride the config into both.
type backendCase struct {
	name string
	make func(t *testing.T, cfg CompilerConfig) Backend
}

func backendCases() []backendCase {
	return []backendCase{
		{name: "local", make: func(t *testing.T, cfg CompilerConfig) Backend {
			return NewCompiler(cfg)
		}},
		{name: "local-spec", make: func(t *testing.T, cfg CompilerConfig) Backend {
			// Speculation is an execution detail: the whole conformance
			// contract must hold unchanged with lanes racing inside every
			// compilation.
			cfg.Speculation = 4
			return NewCompiler(cfg)
		}},
		{name: "remote", make: func(t *testing.T, cfg CompilerConfig) Backend {
			t.Helper()
			s := service.New(service.Config{Workers: cfg.Workers, CacheSize: cfg.CacheSize, Store: cfg.Store})
			ts := httptest.NewServer(s.Handler())
			t.Cleanup(func() {
				ts.Close()
				s.Shutdown(context.Background())
			})
			return NewRemote(ts.URL, WithPollInterval(5*time.Millisecond))
		}},
		{name: "cluster", make: func(t *testing.T, cfg CompilerConfig) Backend {
			t.Helper()
			_, cl := newConformanceFleet(t, cfg, 3)
			return cl
		}},
	}
}

// conformanceNodeInFlight is the cluster case's per-node dispatch window.
// It is deliberately small: the servers run with Runners = window + 2, so
// a job stalled in a gated Store (plus its possible hedge duplicate) can
// never starve a node of runners, and the cancel test's "some jobs must
// still fail" invariant holds (3 nodes × 2 in flight < the job count).
const conformanceNodeInFlight = 2

// newConformanceFleet starts n in-process service instances sharing the
// engine config (so store gates apply fleet-wide) and returns them with a
// Cluster backend over all of them.
func newConformanceFleet(t *testing.T, cfg CompilerConfig, n int) ([]*httptest.Server, *Cluster) {
	t.Helper()
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range n {
		s := service.New(service.Config{
			Workers:   cfg.Workers,
			CacheSize: cfg.CacheSize,
			Store:     cfg.Store,
			// Every unary dispatch is its own one-job ticket; keep runner
			// headroom above the dispatch window so gated jobs and hedge
			// duplicates cannot wedge a node.
			Runners: conformanceNodeInFlight + 2,
		})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			s.Shutdown(context.Background())
		})
		tss[i], urls[i] = ts, ts.URL
	}
	cl := NewCluster(urls,
		WithNodeInFlight(conformanceNodeInFlight),
		WithHealthInterval(50*time.Millisecond))
	t.Cleanup(cl.Close)
	return tss, cl
}

// conformanceJobs is the shared suite×machines job set both backends must
// agree on: real workload loops across clustered configurations, the
// paper pipeline with and without replication plus a rival strategy.
func conformanceJobs(t *testing.T) []CompileJob {
	t.Helper()
	machines := []Machine{
		MustParseMachine("2c1b2l64r"),
		MustParseMachine("4c2b2l64r"),
	}
	optsList := []Options{
		{},
		NewOptions(WithReplication(true)),
		NewOptions(WithStrategy("uas")),
	}
	var jobs []CompileJob
	for _, bench := range []string{"tomcatv", "swim"} {
		loops := BenchmarkLoops(bench)
		if len(loops) > 6 {
			loops = loops[:6]
		}
		for i, l := range loops {
			for _, m := range machines {
				jobs = append(jobs, CompileJob{Graph: l.Graph, Machine: m, Opts: optsList[i%len(optsList)]})
			}
		}
	}
	if len(jobs) < 12 {
		t.Fatalf("conformance job set too small: %d", len(jobs))
	}
	return jobs
}

// resultFingerprint flattens everything observable about a Result —
// achieved II, cause tally, replication accounting, the full issue-time
// vector and the placement — so "identical" means identical, not just
// same-II.
func resultFingerprint(r *Result) string {
	if r == nil {
		return "<nil>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "II=%d MII=%d len=%d sc=%d comms=%d/%d repl=%v rm=%d steps=%d causes=%v",
		r.II, r.MII, r.Length, r.SC, r.CommsBeforeReplication, r.Comms,
		r.Replicated, r.Removed, r.ReplicationSteps, r.IIIncreases)
	if r.Schedule != nil {
		fmt.Fprintf(&b, " t=%v", r.Schedule.Time)
	}
	if r.Placement != nil {
		fmt.Fprintf(&b, " home=%v repl=%v", r.Placement.Home, r.Placement.Replicas)
	}
	return b.String()
}

// referenceOutcomes compiles the job set serially on a plain local engine:
// the ground truth both backends must reproduce.
func referenceOutcomes(t *testing.T, jobs []CompileJob) []string {
	t.Helper()
	outs, err := Collect(context.Background(), NewLocal(WithWorkers(1)), jobs)
	if err != nil {
		t.Fatalf("reference compilation failed: %v", err)
	}
	fps := make([]string, len(outs))
	for i, o := range outs {
		fps[i] = resultFingerprint(o.Result)
	}
	return fps
}

// TestBackendConformanceIdenticalResults: the same job list must produce
// bit-identical Results through every Backend.
func TestBackendConformanceIdenticalResults(t *testing.T) {
	jobs := conformanceJobs(t)
	want := referenceOutcomes(t, jobs)
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			b := bc.make(t, CompilerConfig{})
			outs, err := Collect(context.Background(), b, jobs)
			if err != nil {
				t.Fatalf("collect: %v", err)
			}
			for i, o := range outs {
				if o.Err != nil {
					t.Fatalf("job %d (%s): %v", i, jobs[i].Graph.Name, o.Err)
				}
				if got := resultFingerprint(o.Result); got != want[i] {
					t.Fatalf("job %d (%s on %s) diverges:\n  backend: %s\n  reference: %s",
						i, jobs[i].Graph.Name, jobs[i].Machine.Name, got, want[i])
				}
			}
			// Unary and streaming halves agree too.
			res, err := b.Compile(context.Background(), jobs[0])
			if err != nil {
				t.Fatal(err)
			}
			if got := resultFingerprint(res); got != want[0] {
				t.Fatalf("unary Compile diverges from the batch result:\n  %s\n  %s", got, want[0])
			}
		})
	}
}

// uniqueGatedJob returns a job whose loop appears nowhere in jobs, so a
// gate keyed on its name holds exactly that one job.
func uniqueGatedJob(t *testing.T, jobs []CompileJob) CompileJob {
	t.Helper()
	inSet := map[string]bool{}
	for _, j := range jobs {
		inSet[j.Graph.Name] = true
	}
	for _, l := range BenchmarkLoops("hydro2d") {
		if !inSet[l.Graph.Name] {
			return CompileJob{Graph: l.Graph, Machine: MustParseMachine("4c2b2l64r")}
		}
	}
	t.Fatal("no unique loop available for the gate")
	return CompileJob{}
}

// TestBackendConformanceStreamingIncremental: with the last job gated
// shut, the stream must still deliver every other outcome — and therefore
// delivers them while the batch is verifiably unfinished. A transport
// that only reports completed batches (polling) cannot pass: the gate
// only opens after the early outcomes arrive.
func TestBackendConformanceStreamingIncremental(t *testing.T) {
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			jobs := conformanceJobs(t)
			gated := uniqueGatedJob(t, jobs)
			jobs = append(jobs, gated)
			last := gated.Graph.Name
			gate := newGateStore(last)
			b := bc.make(t, CompilerConfig{Workers: 1, Store: gate})

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			delivered := 0
			released := false
			for i, out := range b.Stream(ctx, jobs) {
				if out.Err != nil {
					t.Fatalf("job %d: %v", i, out.Err)
				}
				delivered++
				if delivered == len(jobs)-1 && !released {
					// Every ungated job has streamed in while the batch is
					// provably still running (the gated job cannot have
					// finished). Open the gate to let it complete.
					released = true
					gate.release(last)
				}
			}
			if delivered != len(jobs) {
				t.Fatalf("stream delivered %d of %d outcomes", delivered, len(jobs))
			}
		})
	}
}

// TestBackendConformanceEarlyStop: breaking out of a Stream iteration
// abandons the remaining work cleanly — no panic from a backend calling
// yield after the consumer returned false, no goroutine wedge.
func TestBackendConformanceEarlyStop(t *testing.T) {
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			jobs := conformanceJobs(t)
			b := bc.make(t, CompilerConfig{Workers: 1})
			n := 0
			for _, out := range b.Stream(context.Background(), jobs) {
				if out.Err != nil {
					t.Fatal(out.Err)
				}
				if n++; n == 2 {
					break
				}
			}
			if n != 2 {
				t.Fatalf("consumed %d outcomes, want to stop at 2", n)
			}
			// The backend is still usable afterwards.
			res, err := b.Compile(context.Background(), jobs[0])
			if err != nil || res == nil {
				t.Fatalf("backend unusable after early stop: %v", err)
			}
		})
	}
}

// TestBackendConformanceCancelCleanPrefix: cancelling mid-stream must
// yield every job exactly once, with finished outcomes identical to an
// uncancelled run and everything else carrying an error — never a torn or
// missing outcome. A gated job pinned at index 3 holds the batch open so
// the cancellation deterministically lands mid-stream.
func TestBackendConformanceCancelCleanPrefix(t *testing.T) {
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			base := conformanceJobs(t)
			gated := uniqueGatedJob(t, base)
			// Three fast jobs, then the gate, then the rest: with one
			// worker, exactly three outcomes finish before the stream
			// stalls at the gate.
			jobs := append([]CompileJob{}, base[:3]...)
			jobs = append(jobs, gated)
			jobs = append(jobs, base[3:]...)
			want := referenceOutcomes(t, jobs[:3])
			gate := newGateStore(gated.Graph.Name)
			b := bc.make(t, CompilerConfig{Workers: 1, Store: gate})

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			seen := make([]bool, len(jobs))
			finished, failed := 0, 0
			for i, out := range b.Stream(ctx, jobs) {
				if seen[i] {
					t.Fatalf("job %d yielded twice", i)
				}
				seen[i] = true
				if out.Err != nil {
					failed++
					continue
				}
				finished++
				if i < 3 {
					if got := resultFingerprint(out.Result); got != want[i] {
						t.Fatalf("finished outcome %d diverges after cancel:\n  %s\n  %s", i, got, want[i])
					}
				}
				if finished == 3 {
					// The worker is stalled at the gate: cancel while the
					// batch is provably mid-flight, then open the gate so
					// everything winds down.
					cancel()
					gate.release(gated.Graph.Name)
				}
			}
			for i, ok := range seen {
				if !ok {
					t.Fatalf("job %d never yielded", i)
				}
			}
			if finished < 3 {
				t.Fatalf("only %d outcomes finished before the cancel", finished)
			}
			if failed == 0 {
				t.Fatal("cancellation mid-stream produced no failed outcomes")
			}
		})
	}
}
