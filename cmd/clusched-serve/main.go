// Command clusched-serve runs the compilation service: an HTTP server
// that accepts loops in the ddg text format (wrapped in JSON), compiles
// them on the shared batch engine, and answers tickets asynchronously.
// With -cache-dir it keeps a persistent result cache, so a restarted
// server answers previously seen jobs without recompiling them.
//
// Usage:
//
//	clusched-serve -addr :8357 -cache-dir /var/cache/clusched
//	clusched-serve -workers 8 -queue 128 -timeout 5m
//	clusched-serve -speculate 4        # race candidate IIs inside each compilation
//	clusched-serve -max-inflight 8     # cap concurrent real compilations engine-wide
//	clusched-serve -pprof localhost:6060   # expose net/http/pprof
//	clusched-serve -trace-jobs -slow-compile 250ms   # trace every batch, log slow ones
//
// Endpoints:
//
//	POST   /compile            one job (JSON {loop, machine, options}); ?wait=1 blocks
//	POST   /batch              {jobs: [...], timeout_ms, trace} → {id}
//	GET    /batch/{id}/stream  NDJSON push: one outcome frame per job as it finishes
//	GET    /jobs/{id}          ticket status; outcomes once finished
//	GET    /jobs/{id}/trace    Chrome trace-event JSON for traced tickets
//	DELETE /jobs/{id}          cancel
//	GET    /strategies         registered scheduling strategies (options.strategy values)
//	GET    /stats              queue depth, in-flight, throughput, cache hit rate, per-strategy counts
//	GET    /metrics            the same accounting as Prometheus text exposition
//	GET    /healthz            200 with build info while serving, 503 while draining
//
// The server logs structured lines (log/slog text format) to stderr: one
// access-log line per HTTP request plus ticket lifecycle events. -quiet
// silences the access log, -v adds debug detail, and -slow-compile logs a
// warning (with a trace summary when the ticket is traced) for any single
// compilation over the threshold.
//
// Batch consumers should prefer the stream endpoint (clusched.NewRemote's
// Stream uses it): each verified result is pushed the moment it compiles,
// and polling GET /jobs/{id} becomes a fallback, not the steady state.
//
// SIGINT/SIGTERM triggers a graceful drain bounded by -drain-timeout.
//
// -pprof serves Go's net/http/pprof profiles (CPU, heap, goroutines, …) on
// a separate listener, so production performance questions — is the engine
// allocation-bound, where do compile cycles go — can be answered against
// the live server with `go tool pprof`. It is opt-in and should stay on a
// loopback or otherwise private address: the profile endpoints expose
// internals and are not meant for untrusted clients.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clusched/internal/service"
)

func main() {
	addr := flag.String("addr", ":8357", "listen address")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory (empty = in-memory only)")
	workers := flag.Int("workers", 0, "concurrent compilations per batch (default: GOMAXPROCS)")
	runners := flag.Int("runners", 1, "batches processed concurrently")
	queue := flag.Int("queue", 64, "queued-ticket bound (admission control)")
	cacheSize := flag.Int("cache-size", 0, "in-memory result-cache entries (default: engine default)")
	speculate := flag.Int("speculate", 0, "race up to k candidate IIs per compilation (speculative multi-II search; 0/1 = off; results and cache keys are unchanged)")
	maxInflight := flag.Int("max-inflight", 0, "engine-wide cap on concurrently running real compilations, across all batches (0 = unbounded; distinct from -queue admission control; exposed in /stats as max_inflight)")
	timeout := flag.Duration("timeout", 0, "default per-ticket deadline (0 = none)")
	drain := flag.Duration("drain-timeout", time.Minute, "graceful-shutdown bound")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	quiet := flag.Bool("quiet", false, "suppress the per-request access log (lifecycle and warning logs remain)")
	verbose := flag.Bool("v", false, "log debug detail (per-ticket submission events)")
	slowCompile := flag.Duration("slow-compile", 0, "warn when a single compilation exceeds this duration (0 = off)")
	traceJobs := flag.Bool("trace-jobs", false, "record an execution trace for every batch (retrievable from GET /jobs/{id}/trace)")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "clusched-serve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "clusched-serve: pprof: %v\n", err)
			}
		}()
	}

	cfg := service.Config{
		Workers:        *workers,
		Runners:        *runners,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		Speculation:    *speculate,
		MaxInFlight:    *maxInflight,
		DefaultTimeout: *timeout,
		Logger:         logger,
		AccessLog:      !*quiet,
		SlowCompile:    *slowCompile,
		TraceJobs:      *traceJobs,
	}
	var cache *service.DiskCache
	if *cacheDir != "" {
		var err error
		cache, err = service.OpenDiskCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		cfg.Store = cache
		fmt.Fprintf(os.Stderr, "clusched-serve: persistent cache at %s (%d entries)\n", *cacheDir, cache.Len())
	}
	srv := service.New(cfg)

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "clusched-serve: listening on %s\n", *addr)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "clusched-serve: %v, draining (up to %v)\n", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "clusched-serve: forced shutdown: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "clusched-serve: http shutdown: %v\n", err)
	}
	if cache != nil {
		if err := cache.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "clusched-serve: cache close: %v\n", err)
		}
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "clusched-serve: served %d tickets, %d jobs; cache hit rate %.1f%%\n",
		st.Completed, st.JobsCompiled, 100*st.Cache.HitRate)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "clusched-serve: %v\n", err)
	os.Exit(1)
}
