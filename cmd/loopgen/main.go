// Command loopgen dumps loops of the synthetic SPECfp95 workload in the
// text DDG format, for inspection or for feeding into replisched.
//
// Usage:
//
//	loopgen                      # summary of the whole suite
//	loopgen -bench tomcatv       # every tomcatv loop as text DDGs
//	loopgen -bench swim -n 3     # only the first 3 loops
//	loopgen -stats               # per-benchmark structural statistics
//	loopgen -bench swim -permute # renamed/reordered isomorphic clones
//	loopgen -bench swim -dup 3   # each loop plus 3 distinct clones
//
// -permute and -dup build the duplicated-shape corpus for exercising the
// engine's canonical (isomorphism-invariant) cache tier: every clone is
// the same abstract loop under fresh node names, a shuffled node order and
// a shuffled edge order, so exact fingerprints differ while canonical
// fingerprints match.
package main

import (
	"flag"
	"fmt"
	"os"

	"clusched/internal/ddg"
	"clusched/internal/metrics"
	"clusched/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark to dump (default: summary of all)")
	n := flag.Int("n", 0, "dump at most n loops (0 = all)")
	stats := flag.Bool("stats", false, "print structural statistics instead of DDGs")
	permute := flag.Bool("permute", false, "emit a renamed/reordered isomorphic clone of each loop instead of the original")
	dup := flag.Int("dup", 0, "emit each loop followed by this many distinct isomorphic clones")
	seed := flag.Int64("seed", 1, "base seed for the clone permutations")
	flag.Parse()

	if *stats || *bench == "" {
		t := metrics.NewTable("benchmark", "loops", "avg ops", "avg edges", "int %", "fp %", "mem %", "avg iters", "avg visits")
		for _, name := range workload.Benchmarks() {
			loops := workload.LoopsFor(name)
			var ops, edges, iters, visits float64
			var classes [ddg.NumClasses]float64
			for _, l := range loops {
				ops += float64(l.Graph.NumNodes())
				edges += float64(l.Graph.NumEdges())
				c := l.Graph.CountClass()
				for k, v := range c {
					classes[k] += float64(v)
				}
				iters += l.AvgIters
				visits += float64(l.Visits)
			}
			nl := float64(len(loops))
			t.AddRow(name, len(loops), ops/nl, edges/nl,
				100*classes[ddg.ClassInt]/ops, 100*classes[ddg.ClassFP]/ops, 100*classes[ddg.ClassMem]/ops,
				iters/nl, visits/nl)
		}
		fmt.Print(t.String())
		fmt.Printf("total loops: %d\n", len(workload.SPECfp95()))
		return
	}

	loops := workload.LoopsFor(*bench)
	if loops == nil {
		fmt.Fprintf(os.Stderr, "loopgen: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	emit := func(g *ddg.Graph, visits int64, iters float64) {
		fmt.Printf("# %s: visits=%d avg_iters=%.1f\n", g.Name, visits, iters)
		if err := ddg.WriteText(os.Stdout, g); err != nil {
			fmt.Fprintf(os.Stderr, "loopgen: %v\n", err)
			os.Exit(1)
		}
	}
	for i, l := range loops {
		if *n > 0 && i >= *n {
			break
		}
		if !*permute {
			emit(l.Graph, l.Visits, l.AvgIters)
		}
		clones := *dup
		if *permute && clones == 0 {
			clones = 1
		}
		for k := 0; k < clones; k++ {
			name := fmt.Sprintf("%s#p%d", l.Graph.Name, k+1)
			// Distinct seed per (loop, clone): same loop, different
			// presentation each time, reproducible across runs.
			clone := ddg.PermuteRandom(l.Graph, name, *seed+int64(i)*1000003+int64(k)*8191)
			emit(clone, l.Visits, l.AvgIters)
		}
	}
}
