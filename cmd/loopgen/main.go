// Command loopgen dumps loops of the synthetic SPECfp95 workload — or of a
// parameterized corpus distribution — in the text DDG format, for
// inspection or for feeding into replisched. It is a thin CLI over
// internal/corpus, which owns all loop generation.
//
// Usage:
//
//	loopgen                      # summary of the whole suite
//	loopgen -bench tomcatv       # every tomcatv loop as text DDGs
//	loopgen -bench swim -n 3     # only the first 3 loops
//	loopgen -stats               # per-benchmark structural statistics
//	loopgen -bench swim -permute # renamed/reordered isomorphic clones
//	loopgen -bench swim -dup 3   # each loop plus 3 distinct clones
//
//	loopgen -corpus -n 100 -seed 7 -size 8:48 \
//	    -scc chain=1,tree=1,cyclic=2 -lat fadd=3,fmul=2,iadd=4 \
//	    -mem 0.2 -pressure 0.6     # 100 distribution-generated loops
//
// -permute and -dup build the duplicated-shape corpus for exercising the
// engine's canonical (isomorphism-invariant) cache tier: every clone is
// the same abstract loop under fresh node names, a shuffled node order and
// a shuffled edge order, so exact fingerprints differ while canonical
// fingerprints match.
//
// -corpus streams loops from a corpus.Spec: -size bounds ops per loop,
// -scc weights the structural families, -lat weights the ALU op kinds
// inside the SCC families, -mem sets memory ordering edges per memory op,
// -pressure in [0,1] scales register pressure. The same flags with the
// same -seed always regenerate the same loops, in any order and count.
package main

import (
	"flag"
	"fmt"
	"os"

	"clusched/internal/corpus"
	"clusched/internal/ddg"
	"clusched/internal/metrics"
	"clusched/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark to dump (default: summary of all)")
	n := flag.Int("n", 0, "dump at most n loops (0 = all)")
	stats := flag.Bool("stats", false, "print structural statistics instead of DDGs")
	permute := flag.Bool("permute", false, "emit a renamed/reordered isomorphic clone of each loop instead of the original")
	dup := flag.Int("dup", 0, "emit each loop followed by this many distinct isomorphic clones")
	seed := flag.Int64("seed", 1, "base seed for the clone permutations (or the corpus master seed)")
	corpusMode := flag.Bool("corpus", false, "generate from a corpus distribution instead of the benchmark suite")
	sizeFlag := flag.String("size", "", "corpus: ops per loop as lo:hi")
	sccFlag := flag.String("scc", "", "corpus: shape mix, e.g. chain=1,tree=1,cyclic=2")
	latFlag := flag.String("lat", "", "corpus: op latency mix, e.g. fadd=3,fmul=2,iadd=4")
	memFlag := flag.Float64("mem", -1, "corpus: memory ordering edges per memory op")
	pressureFlag := flag.Float64("pressure", -1, "corpus: register pressure in [0,1]")
	flag.Parse()

	if *corpusMode {
		spec, err := corpusSpec(*n, *seed, *sizeFlag, *sccFlag, *latFlag, *memFlag, *pressureFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loopgen: %v\n", err)
			os.Exit(2)
		}
		for i, g := range spec.Loops() {
			fmt.Printf("# %s: index=%d loop_seed=%d\n", g.Name, i, spec.LoopSeed(i))
			if err := ddg.WriteText(os.Stdout, g); err != nil {
				fmt.Fprintf(os.Stderr, "loopgen: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *stats || *bench == "" {
		t := metrics.NewTable("benchmark", "loops", "avg ops", "avg edges", "int %", "fp %", "mem %", "avg iters", "avg visits")
		for _, name := range workload.Benchmarks() {
			loops := workload.LoopsFor(name)
			var ops, edges, iters, visits float64
			var classes [ddg.NumClasses]float64
			for _, l := range loops {
				ops += float64(l.Graph.NumNodes())
				edges += float64(l.Graph.NumEdges())
				c := l.Graph.CountClass()
				for k, v := range c {
					classes[k] += float64(v)
				}
				iters += l.AvgIters
				visits += float64(l.Visits)
			}
			nl := float64(len(loops))
			t.AddRow(name, len(loops), ops/nl, edges/nl,
				100*classes[ddg.ClassInt]/ops, 100*classes[ddg.ClassFP]/ops, 100*classes[ddg.ClassMem]/ops,
				iters/nl, visits/nl)
		}
		fmt.Print(t.String())
		fmt.Printf("total loops: %d\n", len(workload.SPECfp95()))
		return
	}

	loops := workload.LoopsFor(*bench)
	if loops == nil {
		fmt.Fprintf(os.Stderr, "loopgen: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	emit := func(g *ddg.Graph, visits int64, iters float64) {
		fmt.Printf("# %s: visits=%d avg_iters=%.1f\n", g.Name, visits, iters)
		if err := ddg.WriteText(os.Stdout, g); err != nil {
			fmt.Fprintf(os.Stderr, "loopgen: %v\n", err)
			os.Exit(1)
		}
	}
	for i, l := range loops {
		if *n > 0 && i >= *n {
			break
		}
		if !*permute {
			emit(l.Graph, l.Visits, l.AvgIters)
		}
		clones := *dup
		if *permute && clones == 0 {
			clones = 1
		}
		for k := 0; k < clones; k++ {
			name := fmt.Sprintf("%s#p%d", l.Graph.Name, k+1)
			// Distinct seed per (loop, clone): same loop, different
			// presentation each time, reproducible across runs.
			clone := ddg.PermuteRandom(l.Graph, name, *seed+int64(i)*1000003+int64(k)*8191)
			emit(clone, l.Visits, l.AvgIters)
		}
	}
}

// corpusSpec assembles a corpus.Spec from the -corpus flag group; unset
// flags keep corpus.DefaultSpec's distributions.
func corpusSpec(n int, seed int64, size, scc, lat string, mem, pressure float64) (corpus.Spec, error) {
	spec := corpus.DefaultSpec()
	if n > 0 {
		spec.N = n
	}
	spec.Seed = seed
	var err error
	if size != "" {
		if spec.Size, err = corpus.ParseSizeRange(size); err != nil {
			return spec, err
		}
	}
	if scc != "" {
		if spec.Shapes, err = corpus.ParseShapeMix(scc); err != nil {
			return spec, err
		}
	}
	if lat != "" {
		if spec.Ops, err = corpus.ParseOpMix(lat); err != nil {
			return spec, err
		}
	}
	if mem >= 0 {
		spec.MemEdges = mem
	}
	if pressure >= 0 {
		spec.Pressure = pressure
	}
	return spec, nil
}
