// Command paperbench regenerates the paper's evaluation: every table and
// figure of "Instruction Replication for Clustered Microarchitectures"
// (MICRO-36, 2003) on the synthetic SPECfp95 suite.
//
// Usage:
//
//	paperbench              # run everything, print the full report
//	paperbench -fig 7       # run one experiment (1, 7, 8, 9, 10, 12)
//	paperbench -fig table1  # print the configuration table
//	paperbench -fig stats   # §4 communication statistics
//	paperbench -fig macro   # §5.2 macro-node ablation
//	paperbench -fig unroll  # §6 unrolling-vs-replication ablation
//	paperbench -o report.txt
//	paperbench -j 4 -progress   # 4 concurrent compilations, progress on stderr
//
// Every pipeline-level experiment drives the shared batch-compilation
// engine (internal/driver): -j bounds its worker pool and -progress
// subscribes to its completion callbacks. The design ablation (-fig
// design) is the one exception — it measures partitioner and scheduler
// internals directly, below the pipeline the engine runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"clusched/internal/driver"
	"clusched/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "experiment to run: 1, 7, 8, 9, 10, 12, table1, stats, macro, unroll, regs, design (default: all)")
	out := flag.String("o", "", "write the report to a file instead of stdout")
	jobs := flag.Int("j", 0, "concurrent compilations (default: GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report per-suite compilation progress on stderr")
	flag.Parse()

	if *jobs != 0 || *progress {
		cfg := driver.Config{Workers: *jobs}
		if *progress {
			cfg.Progress = func(done, total int) {
				if done%100 == 0 || done == total {
					fmt.Fprintf(os.Stderr, "\rcompiling %d/%d loops", done, total)
					if done == total {
						fmt.Fprintln(os.Stderr)
					}
				}
			}
		}
		experiments.Configure(cfg)
	}

	var report string
	switch *fig {
	case "":
		report = experiments.FullReport()
	case "1":
		report = experiments.Fig1Report()
	case "7":
		report = experiments.Fig7Report()
	case "8":
		report = experiments.Fig8Report()
	case "9":
		report = experiments.Fig9Report()
	case "10":
		report = experiments.Fig10Report()
	case "12":
		report = experiments.Fig12Report()
	case "table1":
		report = experiments.Table1()
	case "stats":
		report = experiments.CommStatsReport()
	case "macro":
		report = experiments.MacroAblationReport()
	case "unroll":
		report = experiments.UnrollAblationReport()
	case "regs":
		report = experiments.RegSweepReport()
	case "design":
		report = experiments.DesignAblationReport()
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q\n", *fig)
		os.Exit(2)
	}

	if *progress {
		st := experiments.EngineStats()
		fmt.Fprintf(os.Stderr, "engine cache: %d hits, %d misses, %d entries\n",
			st.Hits, st.Misses, st.Entries)
	}
	if *out == "" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
