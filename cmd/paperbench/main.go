// Command paperbench regenerates the paper's evaluation: every table and
// figure of "Instruction Replication for Clustered Microarchitectures"
// (MICRO-36, 2003) on the synthetic SPECfp95 suite.
//
// Usage:
//
//	paperbench              # run everything, print the full report
//	paperbench -fig 7       # run one experiment (1, 7, 8, 9, 10, 12)
//	paperbench -fig table1  # print the configuration table
//	paperbench -fig stats   # §4 communication statistics
//	paperbench -fig macro   # §5.2 macro-node ablation
//	paperbench -fig unroll  # §6 unrolling-vs-replication ablation
//	paperbench -o report.txt
//	paperbench -j 4 -progress   # 4 concurrent compilations, progress on stderr
//	paperbench -speculate 4     # race candidate IIs inside each compilation
//	paperbench -trace trace.json -fig 7   # record a Chrome trace of the run
//	paperbench -json bench.json # machine-readable per-figure numbers + engine stats
//	paperbench -strategies paper,unified,uas,moddist   # head-to-head strategy comparison
//	paperbench -remote http://localhost:8357 -fig 7    # evaluation as service traffic
//	paperbench -cluster http://h1:8357,http://h2:8357  # evaluation sharded across a fleet
//	paperbench -json bench.json -cluster-nodes 3       # fleet-scaling section in the JSON
//	paperbench -fig table1 -corpus 10000 -json BENCH_6.json  # corpus-validation shootout
//
// -corpus N races every registered strategy over an N-loop generated
// corpus (internal/corpus defaults, master seed -corpus-seed) and
// validates each accepted schedule on the cycle-accurate simulator; the
// claimed-vs-simulated table lands in the report and, with -json, in a
// "corpus" section. cmd/corpusbench exposes the full distribution knobs.
//
// -remote swaps the in-process engine for the remote Backend (the same
// clusched.Backend seam every tool programs against): every suite
// compilation is submitted to the clusched-serve instance and streamed
// back, so the paper evaluation doubles as a realistic service workload.
// The timing section still measures the local engine; the remote cache
// lives server-side (see GET /stats).
//
// -strategies compiles the whole suite under each named scheduling
// strategy (see the root package's Strategies) on the headline
// configuration (-strategies-config, default 4c2b2l64r) and appends a
// per-suite IPC/speedup table to the report; with -json the same rows land
// in a "strategies" section. Speedups are relative to the first strategy
// listed.
//
// -trace records the whole run — every worker's job spans, cache lookups,
// passes, II attempts and speculative lanes — into a Chrome trace-event
// JSON file, viewable in chrome://tracing or https://ui.perfetto.dev. It
// applies to local runs only; with -remote, traces are recorded
// server-side (submit with trace and fetch GET /jobs/{id}/trace).
//
// -json writes the typed per-figure rows (the same data the text report
// renders), a timing section (the full suite compiled from scratch and
// timed, serial and parallel, with allocation counts — the perf-trajectory
// datapoint documented in EXPERIMENTS.md) and the engine's CacheStats as
// one JSON document, the format of the BENCH_*.json files. It composes
// with -fig: only the selected experiment's section is populated. The
// suite results are memoized in the engine, so emitting JSON alongside the
// text report does not recompile anything beyond the timed run.
//
// Every pipeline-level experiment drives the shared batch-compilation
// engine (internal/driver): -j bounds its worker pool and -progress
// subscribes to its completion callbacks. The design ablation (-fig
// design) is the one exception — it measures partitioner and scheduler
// internals directly, below the pipeline the engine runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"clusched"
	"clusched/internal/corpus"
	"clusched/internal/driver"
	"clusched/internal/experiments"
	"clusched/internal/machine"
)

// jsonReport is the -json document: one optional section per experiment
// (absent sections were not run) plus the engine cache accounting.
type jsonReport struct {
	Fig1      []experiments.Fig1Row      `json:"fig1,omitempty"`
	Fig7      []experiments.Fig7Config   `json:"fig7,omitempty"`
	Fig8      []experiments.Fig8Row      `json:"fig8,omitempty"`
	Fig9      []experiments.Fig9Row      `json:"fig9,omitempty"`
	Fig10     []experiments.Fig10Row     `json:"fig10,omitempty"`
	Fig12     []experiments.Fig12Row     `json:"fig12,omitempty"`
	CommStats []experiments.CommStatsRow `json:"comm_stats,omitempty"`
	Macro     []experiments.MacroRow     `json:"macro,omitempty"`
	RegSweep  []experiments.RegSweepRow  `json:"reg_sweep,omitempty"`
	// Strategies is the head-to-head scheduling-strategy comparison
	// (populated by -strategies).
	Strategies []experiments.StrategyBenchRow `json:"strategies,omitempty"`
	// Timing is the compile-throughput datapoint of the perf trajectory
	// (see EXPERIMENTS.md): the suite compiled from scratch, timed.
	Timing experiments.ThroughputRow `json:"timing"`
	// Semantic is the canonical-cache datapoint: the duplicated-shape
	// corpus (every loop plus -dup isomorphic clones) served against a
	// warm cache, with hit rate, remap throughput and canonicalization
	// costs (see EXPERIMENTS.md).
	Semantic experiments.SemanticRow `json:"semantic"`
	// Cluster is the fleet-scaling section (populated by -cluster-nodes):
	// the suite compiled through the cluster backend against 1..N
	// in-process serve instances, with the shared-CPU caveat flagged on
	// every row.
	Cluster []experiments.ClusterRow `json:"cluster,omitempty"`
	// Corpus is the corpus-validation shootout (populated by -corpus N):
	// every strategy over an N-loop generated corpus, each accepted
	// schedule executed on the cycle-accurate simulator and checked
	// against the reference — the claimed-vs-simulated table of
	// BENCH_6.json (see EXPERIMENTS.md).
	Corpus *experiments.CorpusSection `json:"corpus,omitempty"`
	Engine driver.CacheStats          `json:"engine"`
}

// collectJSON gathers the typed rows for the selected experiment ("" =
// every figure the full report covers). The underlying suite runs are
// served from the engine cache, so this re-reads, it does not recompute.
// specLanes rides into the timed run so the trajectory can record
// speculative datapoints.
func collectJSON(fig string, specLanes, dup, clusterNodes int) jsonReport {
	var r jsonReport
	all := fig == ""
	if all || fig == "1" {
		r.Fig1 = experiments.Fig1()
	}
	if all || fig == "7" {
		r.Fig7 = experiments.Fig7()
	}
	if all || fig == "8" {
		r.Fig8 = experiments.Fig8()
	}
	if all || fig == "9" {
		r.Fig9 = experiments.Fig9()
	}
	if all || fig == "10" {
		r.Fig10 = experiments.Fig10()
	}
	if all || fig == "12" {
		r.Fig12 = experiments.Fig12()
	}
	if all || fig == "stats" {
		r.CommStats = experiments.CommStats()
	}
	if all || fig == "macro" {
		r.Macro = experiments.MacroAblation()
	}
	if fig == "regs" { // not part of the full report; only when selected
		r.RegSweep = experiments.RegSweep()
	}
	// The timed runs use their own engines, so they neither benefit from
	// nor pollute the shared engine's memoized suites.
	r.Timing = experiments.MeasureThroughput(specLanes)
	r.Semantic = experiments.MeasureSemantic(dup)
	if clusterNodes > 0 {
		r.Cluster = experiments.MeasureClusterScaling(clusterNodes)
	}
	r.Engine = experiments.EngineStats()
	return r
}

// preprocessArgs lets -json appear bare (no file name), meaning "write the
// JSON document to stdout": the flag package requires a value for string
// flags, so the bare form is rewritten to -json=- before parsing.
func preprocessArgs(args []string) []string {
	out := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		a := args[i]
		if (a == "-json" || a == "--json") &&
			(i+1 >= len(args) || (strings.HasPrefix(args[i+1], "-") && args[i+1] != "-")) {
			out = append(out, a+"=-")
			continue
		}
		out = append(out, a)
	}
	return out
}

func main() {
	fig := flag.String("fig", "", "experiment to run: 1, 7, 8, 9, 10, 12, table1, stats, macro, unroll, regs, design (default: all)")
	out := flag.String("o", "", "write the report to a file instead of stdout")
	jsonOut := flag.String("json", "", "also write machine-readable per-figure numbers and engine CacheStats to this file (\"-\" or bare flag: stdout, suppressing the text report)")
	jobs := flag.Int("j", 0, "concurrent compilations (default: GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report per-suite compilation progress on stderr")
	speculate := flag.Int("speculate", 0, "race up to k candidate IIs per compilation (speculative multi-II search; 0/1 = off)")
	dup := flag.Int("dup", 1, "isomorphic clones per loop in the -json semantic-cache measurement")
	strategies := flag.String("strategies", "", "comma-separated scheduling strategies to compare head-to-head (e.g. paper,unified,uas,moddist)")
	corpusN := flag.Int("corpus", 0, "validate every strategy over an N-loop generated corpus on the cycle-accurate simulator (0 = off; see corpusbench for the full flag set)")
	corpusSeed := flag.Int64("corpus-seed", 1, "master seed of the -corpus run")
	strategiesConfig := flag.String("strategies-config", "4c2b2l64r", "machine configuration for the -strategies comparison")
	remote := flag.String("remote", "", "run every suite compilation on a clusched-serve instance at this base URL instead of in-process")
	clusterHosts := flag.String("cluster", "", "comma-separated clusched-serve base URLs: run the evaluation through the sharded cluster backend (mutually exclusive with -remote)")
	clusterNodes := flag.Int("cluster-nodes", 0, "also measure fleet scaling through 1..N in-process serve instances into the -json cluster section (0 = off)")
	traceOut := flag.String("trace", "", "record the run as Chrome trace-event JSON to this file (local runs only)")
	flag.CommandLine.Parse(preprocessArgs(os.Args[1:]))

	var trace *clusched.Trace
	if *traceOut != "" && *remote == "" {
		trace = clusched.NewTrace()
	}

	switch {
	case *clusterHosts != "":
		if *remote != "" {
			fmt.Fprintln(os.Stderr, "paperbench: -cluster and -remote are mutually exclusive")
			os.Exit(2)
		}
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "paperbench: -trace is ignored with -cluster (the servers record traces; see GET /jobs/{id}/trace)")
		}
		if *jobs != 0 {
			fmt.Fprintln(os.Stderr, "paperbench: -j is ignored with -cluster (the servers' workers apply)")
		}
		if *progress {
			fmt.Fprintln(os.Stderr, "paperbench: -progress is ignored with -cluster (compilation runs server-side)")
		}
		// Same Backend seam as -remote, but the batches fan out across the
		// fleet with cache-affine routing.
		cl := clusched.NewCluster(strings.Split(*clusterHosts, ","))
		defer cl.Close()
		experiments.UseBackend(cl)
	case *remote != "":
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "paperbench: -trace is ignored with -remote (submit with trace and fetch GET /jobs/{id}/trace instead)")
		}
		// The experiments engine is a Backend seam: pointing it at the
		// remote client reruns the whole evaluation as service traffic.
		if *jobs != 0 {
			fmt.Fprintln(os.Stderr, "paperbench: -j is ignored with -remote (the server's workers apply)")
		}
		if *progress {
			fmt.Fprintln(os.Stderr, "paperbench: -progress is ignored with -remote (compilation runs server-side)")
		}
		client := clusched.NewRemote(*remote, clusched.WithTimeout(0))
		if err := client.Health(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: service at %s unreachable: %v\n", *remote, err)
			os.Exit(1)
		}
		experiments.UseBackend(client)
		if *speculate > 1 {
			fmt.Fprintln(os.Stderr, "paperbench: -speculate applies only to the local timed run with -remote (the server's own setting governs its compilations)")
		}
	case *jobs != 0 || *progress || *speculate > 1 || trace != nil:
		cfg := driver.Config{Workers: *jobs, Speculation: *speculate, Trace: trace}
		if *progress {
			cfg.Progress = func(done, total int) {
				if done%100 == 0 || done == total {
					fmt.Fprintf(os.Stderr, "\rcompiling %d/%d loops", done, total)
					if done == total {
						fmt.Fprintln(os.Stderr)
					}
				}
			}
		}
		experiments.Configure(cfg)
	}

	var report string
	switch *fig {
	case "":
		report = experiments.FullReport()
	case "1":
		report = experiments.Fig1Report()
	case "7":
		report = experiments.Fig7Report()
	case "8":
		report = experiments.Fig8Report()
	case "9":
		report = experiments.Fig9Report()
	case "10":
		report = experiments.Fig10Report()
	case "12":
		report = experiments.Fig12Report()
	case "table1":
		report = experiments.Table1()
	case "stats":
		report = experiments.CommStatsReport()
	case "macro":
		report = experiments.MacroAblationReport()
	case "unroll":
		report = experiments.UnrollAblationReport()
	case "regs":
		report = experiments.RegSweepReport()
	case "design":
		report = experiments.DesignAblationReport()
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q\n", *fig)
		os.Exit(2)
	}

	// Head-to-head strategy comparison: append the table to the report and
	// carry the typed rows into the JSON document. The per-loop results are
	// memoized in the engine, so the rows and the rendered table share one
	// suite compilation per strategy.
	var strategyRows []experiments.StrategyBenchRow
	if *strategies != "" {
		var names []string
		for _, name := range strings.Split(*strategies, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		m, err := machine.Parse(*strategiesConfig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: -strategies-config: %v\n", err)
			os.Exit(2)
		}
		strategyRows, err = experiments.StrategyComparison(names, m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: -strategies: %v\n", err)
			os.Exit(2)
		}
		table := experiments.StrategyComparisonReport(strategyRows, names, m)
		if report != "" {
			report += "\n"
		}
		report += table
	}

	// Corpus-validation shootout: compile a generated corpus under every
	// strategy at full batch concurrency and confirm each accepted schedule
	// on the simulator. Runs on its own engines (like the timed sections),
	// so the shared engine's memoized suites are untouched.
	var corpusSec *experiments.CorpusSection
	if *corpusN > 0 {
		spec := corpus.DefaultSpec()
		spec.N = *corpusN
		spec.Seed = *corpusSeed
		cfg := experiments.CorpusConfig{
			Spec:        spec,
			Workers:     *jobs,
			Speculation: *speculate,
			CloneEvery:  16,
		}
		if *progress {
			cfg.Progress = func(done, total int) {
				if done%1000 == 0 || done == total {
					fmt.Fprintf(os.Stderr, "\rvalidating %d/%d corpus jobs", done, total)
					if done == total {
						fmt.Fprintln(os.Stderr)
					}
				}
			}
		}
		var err error
		corpusSec, err = experiments.MeasureCorpus(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: -corpus: %v\n", err)
			os.Exit(2)
		}
		if report != "" {
			report += "\n"
		}
		report += experiments.CorpusReport(corpusSec)
	}

	if *progress && *remote == "" {
		// The remote backend reports zero CacheStats (its cache lives
		// server-side; see GET /stats), so this line is local-only.
		st := experiments.EngineStats()
		fmt.Fprintf(os.Stderr, "engine cache: %d hits, %d misses, %d entries\n",
			st.Hits, st.Misses, st.Entries)
	}
	jsonToStdout := *jsonOut == "-"
	if *jsonOut != "" {
		doc := collectJSON(*fig, *speculate, *dup, *clusterNodes)
		doc.Strategies = strategyRows
		doc.Corpus = corpusSec
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		if jsonToStdout {
			os.Stdout.Write(append(blob, '\n'))
		} else {
			if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
		}
	}
	if trace != nil {
		// Every experiment has compiled by now; snapshot the recording.
		f, err := os.Create(*traceOut)
		if err == nil {
			err = trace.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: -trace: %v\n", err)
			os.Exit(1)
		}
		sum := trace.Summary()
		fmt.Fprintf(os.Stderr, "wrote %s (%d spans on %d tracks over %v)\n",
			*traceOut, sum.Spans, sum.Tracks, sum.Wall.Round(time.Millisecond))
	}
	if *out == "" {
		if !jsonToStdout {
			fmt.Print(report)
		}
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
