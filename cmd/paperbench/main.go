// Command paperbench regenerates the paper's evaluation: every table and
// figure of "Instruction Replication for Clustered Microarchitectures"
// (MICRO-36, 2003) on the synthetic SPECfp95 suite.
//
// Usage:
//
//	paperbench              # run everything, print the full report
//	paperbench -fig 7       # run one experiment (1, 7, 8, 9, 10, 12)
//	paperbench -fig table1  # print the configuration table
//	paperbench -fig stats   # §4 communication statistics
//	paperbench -fig macro   # §5.2 macro-node ablation
//	paperbench -fig unroll  # §6 unrolling-vs-replication ablation
//	paperbench -o report.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"clusched/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "experiment to run: 1, 7, 8, 9, 10, 12, table1, stats, macro, unroll, regs, design (default: all)")
	out := flag.String("o", "", "write the report to a file instead of stdout")
	flag.Parse()

	var report string
	switch *fig {
	case "":
		report = experiments.FullReport()
	case "1":
		report = experiments.Fig1Report()
	case "7":
		report = experiments.Fig7Report()
	case "8":
		report = experiments.Fig8Report()
	case "9":
		report = experiments.Fig9Report()
	case "10":
		report = experiments.Fig10Report()
	case "12":
		report = experiments.Fig12Report()
	case "table1":
		report = experiments.Table1()
	case "stats":
		report = experiments.CommStatsReport()
	case "macro":
		report = experiments.MacroAblationReport()
	case "unroll":
		report = experiments.UnrollAblationReport()
	case "regs":
		report = experiments.RegSweepReport()
	case "design":
		report = experiments.DesignAblationReport()
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q\n", *fig)
		os.Exit(2)
	}

	if *out == "" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
