// Command corpusbench races every registered scheduling strategy over a
// distribution-generated loop corpus and validates each accepted schedule
// on the cycle-accurate simulator: store-trace equality against the
// reference execution, the completion-time model, and measured
// steady-state cycles/iteration equal to the claimed II. The whole batch
// runs through the driver at full concurrency, so the worker pool,
// speculative II search and semantic cache are exercised under
// validation.
//
// The exit status is the contract: 0 only when every accepted schedule is
// confirmed; any divergence prints a replayable record (corpus seed +
// index + strategy + options) and exits 1. CI runs a bounded corpus on a
// fixed seed; the committed BENCH_6.json records a 10k-loop run.
//
// Usage:
//
//	corpusbench -n 10000 -seed 1 -json BENCH_6.json
//	corpusbench -n 1000 -strategies paper,unified -clone-every 8
//	corpusbench -n 500 -size 8:24 -scc cyclic=1 -lat fdiv=1,fadd=1 -pressure 0.9
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"clusched/internal/corpus"
	"clusched/internal/experiments"
	"clusched/internal/machine"
)

func main() {
	n := flag.Int("n", 10000, "corpus size (loops per strategy)")
	seed := flag.Int64("seed", 1, "corpus master seed")
	config := flag.String("config", "4c2b2l64r", "machine configuration")
	strategies := flag.String("strategies", "", "comma-separated strategy list (default: the full registry)")
	sizeFlag := flag.String("size", "", "ops per loop as lo:hi")
	sccFlag := flag.String("scc", "", "shape mix, e.g. chain=1,tree=1,cyclic=2")
	latFlag := flag.String("lat", "", "op latency mix, e.g. fadd=3,fmul=2,iadd=4")
	memFlag := flag.Float64("mem", -1, "memory ordering edges per memory op")
	pressureFlag := flag.Float64("pressure", -1, "register pressure in [0,1]")
	iters := flag.Int("iters", 0, "simulated iterations per validation (0 = default)")
	workers := flag.Int("j", 0, "driver workers (0 = GOMAXPROCS)")
	speculate := flag.Int("speculate", 2, "speculative II lanes per compilation (<=1 disables)")
	cloneEvery := flag.Int("clone-every", 16, "follow every k-th loop with an isomorphic clone to exercise the semantic cache (0 disables)")
	jsonPath := flag.String("json", "", "also write the corpus section as JSON to this file")
	progress := flag.Bool("progress", false, "print progress to stderr")
	flag.Parse()

	spec := corpus.DefaultSpec()
	spec.N = *n
	spec.Seed = *seed
	var err error
	if *sizeFlag != "" {
		if spec.Size, err = corpus.ParseSizeRange(*sizeFlag); err != nil {
			fatal(err)
		}
	}
	if *sccFlag != "" {
		if spec.Shapes, err = corpus.ParseShapeMix(*sccFlag); err != nil {
			fatal(err)
		}
	}
	if *latFlag != "" {
		if spec.Ops, err = corpus.ParseOpMix(*latFlag); err != nil {
			fatal(err)
		}
	}
	if *memFlag >= 0 {
		spec.MemEdges = *memFlag
	}
	if *pressureFlag >= 0 {
		spec.Pressure = *pressureFlag
	}

	cfg := experiments.CorpusConfig{
		Spec:        spec,
		Machine:     machine.MustParse(*config),
		Iters:       *iters,
		Workers:     *workers,
		Speculation: *speculate,
		CloneEvery:  *cloneEvery,
	}
	if *strategies != "" {
		for _, s := range strings.Split(*strategies, ",") {
			if s = strings.TrimSpace(s); s != "" {
				cfg.Strategies = append(cfg.Strategies, s)
			}
		}
	}
	if *progress {
		cfg.Progress = func(done, total int) {
			if done%1000 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rvalidated %d/%d", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	sec, err := experiments.MeasureCorpus(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiments.CorpusReport(sec))

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(struct {
			Corpus *experiments.CorpusSection `json:"corpus"`
		}{sec}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	divergent := 0
	for _, r := range sec.Rows {
		divergent += r.Divergent
	}
	if divergent > 0 {
		fmt.Fprintf(os.Stderr, "corpusbench: %d divergent schedules — each record above replays via its (seed, index, strategy, opts)\n", divergent)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "corpusbench: %v\n", err)
	os.Exit(2)
}
