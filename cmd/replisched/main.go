// Command replisched compiles loops given in the text DDG format for a
// clustered VLIW machine and reports the modulo schedule, with and without
// instruction replication.
//
// Usage:
//
//	replisched -config 4c2b2l64r loop.ddg
//	loopgen -bench tomcatv -n 1 | replisched -config 4c1b2l64r -kernel -
//	replisched -remote http://localhost:8357 -config 4c2b2l64r loop.ddg
//	replisched -cluster http://h1:8357,http://h2:8357 loop.ddg   # shard across a fleet
//	replisched -strategy uas -config 4c2b2l64r loop.ddg   # rival scheduling strategy
//	replisched -trace trace.json loop.ddg   # record a Chrome trace of the compilation
//
// Flags select the machine (wcxbylzr or "unified"), the pipeline variant,
// and whether to print the kernel and the cluster assignment. Inputs with
// several loops are compiled concurrently on the batch engine; reports are
// printed in input order, loops that fail to schedule are reported inline,
// and the exit status is nonzero if any loop failed.
//
// Local and remote compilation share one code path: both are
// clusched.Backend implementations, and -remote merely swaps which backend
// the batch is collected from. On the remote backend, outcomes arrive over
// the service's NDJSON push stream and come back through the wire codec
// (re-verified schedules), so -kernel, -asm, -verify and -dot work
// identically. Outcomes served from a cache are marked "(cached)".
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"clusched"
	"clusched/internal/codegen"
	"clusched/internal/core"
	"clusched/internal/ddg"
	"clusched/internal/machine"
	"clusched/internal/vliwsim"
)

func main() {
	cfg := flag.String("config", "4c2b2l64r", "machine configuration (wcxbylzr or \"unified\")")
	strategy := flag.String("strategy", "", "scheduling strategy: paper, unified, uas, moddist (default paper; replication flags apply to the paper chain only)")
	noRepl := flag.Bool("no-replication", false, "disable the replication pass")
	length := flag.Bool("length", false, "also run the §5.1 schedule-length replication extension")
	kernel := flag.Bool("kernel", false, "print the kernel of the modulo schedule")
	asm := flag.Bool("asm", false, "expand and print the full software pipeline (prolog/kernel/epilog with registers)")
	simIters := flag.Int("verify", 0, "execute the schedule for N iterations and verify against direct evaluation")
	dot := flag.Bool("dot", false, "print the partitioned DDG in Graphviz format")
	remote := flag.String("remote", "", "compile on a clusched-serve instance at this base URL instead of in-process")
	clusterNodes := flag.String("cluster", "", "comma-separated clusched-serve base URLs: fan the batch across the fleet (mutually exclusive with -remote)")
	traceOut := flag.String("trace", "", "record the compilation as Chrome trace-event JSON to this file (local runs only)")
	flag.Parse()

	m, err := machine.Parse(*cfg)
	if err != nil {
		fatal(err)
	}

	var r io.Reader
	switch {
	case flag.NArg() == 0, flag.Arg(0) == "-":
		r = os.Stdin
	default:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	loops, err := ddg.ParseText(r)
	if err != nil {
		fatal(err)
	}
	if len(loops) == 0 {
		fatal(fmt.Errorf("no loops in input"))
	}

	opts := core.Options{Strategy: *strategy, Replicate: !*noRepl, LengthReplicate: *length, VerifySchedules: true}
	if opts.StrategyName() != "paper" {
		// The rival chains have no replication pass; their Validate would
		// (rightly) reject the flags.
		opts.Replicate, opts.LengthReplicate = false, false
	}
	jobs := make([]clusched.CompileJob, len(loops))
	for i, g := range loops {
		jobs[i] = clusched.CompileJob{Graph: g, Machine: m, Opts: opts}
	}
	// Where the compilation runs is a flag, not a code path: both backends
	// satisfy clusched.Backend, and Collect keeps the reports in input
	// order either way.
	ctx := context.Background()
	var trace *clusched.Trace
	var backend clusched.Backend
	switch {
	case *clusterNodes != "":
		if *remote != "" {
			fatal(fmt.Errorf("-cluster and -remote are mutually exclusive"))
		}
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "replisched: -trace is ignored with -cluster (the servers record traces; see GET /jobs/{id}/trace)")
		}
		cl := clusched.NewCluster(strings.Split(*clusterNodes, ","))
		defer cl.Close()
		backend = cl
	case *remote != "":
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "replisched: -trace is ignored with -remote (the server records traces; see GET /jobs/{id}/trace)")
		}
		client := clusched.NewRemote(*remote)
		if err := client.Health(ctx); err != nil {
			fatal(fmt.Errorf("service at %s unreachable: %w", *remote, err))
		}
		backend = client
	case *traceOut != "":
		trace = clusched.NewTrace()
		backend = clusched.NewLocal(clusched.WithTrace(trace))
	default:
		backend = clusched.NewLocal()
	}
	outcomes, batchErr := clusched.Collect(ctx, backend, jobs)
	if trace != nil {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = trace.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fatal(fmt.Errorf("-trace: %w", err))
		}
		fmt.Fprintf(os.Stderr, "replisched: wrote %s\n", *traceOut)
	}
	for i, out := range outcomes {
		g, res := jobs[i].Graph, out.Result
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "replisched: loop %s: %v\n", g.Name, out.Err)
			continue
		}
		cached := ""
		if out.CacheHit {
			cached = " (cached)"
		}
		strat := ""
		if opts.StrategyName() != "paper" {
			strat = " strategy=" + opts.StrategyName()
		}
		// res.Machine is the effective machine (the unified strategy
		// substitutes the monolithic equivalent).
		fmt.Printf("loop %s on %s: MII=%d II=%d length=%d stages=%d%s%s\n",
			g.Name, res.Machine, res.MII, res.II, res.Length, res.SC, strat, cached)
		fmt.Printf("  communications: %d implied by the partition, %d after replication\n",
			res.CommsBeforeReplication, res.Comms)
		if res.ReplicationSteps > 0 {
			total := 0
			for _, n := range res.Replicated {
				total += n
			}
			fmt.Printf("  replication: %d subgraphs, %d instances added (%d int, %d fp, %d mem), %d originals removed\n",
				res.ReplicationSteps, total,
				res.Replicated[ddg.ClassInt], res.Replicated[ddg.ClassFP], res.Replicated[ddg.ClassMem],
				res.Removed)
		}
		fmt.Printf("  register pressure per cluster: %v (limit %d)\n", res.Schedule.MaxLive, res.Machine.Regs)
		if *kernel {
			fmt.Println(res.Schedule.FormatKernel())
		}
		if *asm {
			p, err := codegen.Expand(res.Schedule)
			if err != nil {
				fatal(err)
			}
			fmt.Print(p.Format())
		}
		if *simIters > 0 {
			if err := vliwsim.Check(res.Schedule, *simIters); err != nil {
				fatal(err)
			}
			fmt.Printf("  verified: %d iterations match direct evaluation\n", *simIters)
		}
		if *dot {
			fmt.Println(ddg.DOT(g, res.Placement.Home))
		}
	}
	if batchErr != nil {
		fatal(batchErr)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "replisched: %v\n", err)
	os.Exit(1)
}
