module clusched

go 1.24
