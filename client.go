package clusched

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"clusched/internal/driver"
	"clusched/internal/wire"
)

// Client speaks to a clusched-serve compilation service. Results come
// back through the wire codec, which rebuilds and re-verifies every
// schedule — a Result obtained remotely is as trustworthy as one compiled
// in-process, and carries the full Schedule and Placement (so kernels can
// be printed and pipelines expanded locally).
//
// The zero Client is not usable; call NewClient.
type Client struct {
	base string
	hc   *http.Client
	// PollInterval paces WaitBatch's GET /jobs/{id} loop (default 250ms).
	PollInterval time.Duration
}

// NewClient returns a Client for the service at base (e.g.
// "http://localhost:8357").
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// RemoteStats is the service's /stats answer.
type RemoteStats = wire.ServiceStats

// QueueFullError reports an admission-control rejection (HTTP 429); the
// caller should retry after the hinted delay.
type QueueFullError struct {
	RetryAfter time.Duration
}

// Error implements error.
func (e *QueueFullError) Error() string {
	return fmt.Sprintf("clusched: service queue full, retry after %v", e.RetryAfter)
}

// do sends one JSON request and decodes the JSON answer into out,
// translating error answers.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var er wire.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err == nil && er.Error != "" {
			if resp.StatusCode == http.StatusTooManyRequests {
				return &QueueFullError{RetryAfter: time.Duration(er.RetryAfterMS) * time.Millisecond}
			}
			return fmt.Errorf("clusched: service: %s", er.Error)
		}
		return fmt.Errorf("clusched: service answered %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health reports whether the service is up and accepting work.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Stats fetches the service metrics.
func (c *Client) Stats(ctx context.Context) (RemoteStats, error) {
	var st RemoteStats
	err := c.do(ctx, http.MethodGet, "/stats", nil, &st)
	return st, err
}

// Compile compiles one loop remotely (POST /compile?wait=1, blocking
// until the service finishes). cacheHit reports whether the service
// answered from its cache.
func (c *Client) Compile(ctx context.Context, g *Graph, m Machine, opts Options) (res *Result, cacheHit bool, err error) {
	wj, err := wire.EncodeJob(driver.Job{Graph: g, Machine: m, Opts: opts})
	if err != nil {
		return nil, false, err
	}
	var st wire.JobStatus
	if err := c.do(ctx, http.MethodPost, "/compile?wait=1", wj, &st); err != nil {
		return nil, false, err
	}
	if len(st.Outcomes) != 1 {
		return nil, false, fmt.Errorf("clusched: service answered %d outcomes for one job (state %s, %s)",
			len(st.Outcomes), st.State, st.Error)
	}
	out, err := st.Outcomes[0].Decode()
	if err != nil {
		return nil, false, err
	}
	return out.Result, out.CacheHit, out.Err
}

// SubmitBatch submits jobs for asynchronous remote compilation and
// returns the ticket ID. timeout bounds the batch's remote lifetime
// (0 = the server's policy).
func (c *Client) SubmitBatch(ctx context.Context, jobs []CompileJob, timeout time.Duration) (string, error) {
	wjs := make([]wire.Job, len(jobs))
	for i, j := range jobs {
		wj, err := wire.EncodeJob(j)
		if err != nil {
			return "", fmt.Errorf("job %d: %w", i, err)
		}
		wjs[i] = wj
	}
	var sub wire.SubmitResponse
	err := c.do(ctx, http.MethodPost, "/batch", wire.SubmitRequest{Jobs: wjs, TimeoutMS: timeout.Milliseconds()}, &sub)
	return sub.ID, err
}

// BatchStatus is a remote ticket snapshot; Outcomes is nil until the
// ticket finishes.
type BatchStatus struct {
	ID    string
	State string
	// Outcomes is index-aligned with the submitted jobs; Job fields are
	// zero (the submitter already has them).
	Outcomes []CompileOutcome
	// Err summarizes the batch failure or cancellation, if any.
	Err error
}

// Status polls a ticket once.
func (c *Client) Status(ctx context.Context, id string) (BatchStatus, error) {
	var ws wire.JobStatus
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &ws); err != nil {
		return BatchStatus{}, err
	}
	return decodeStatus(ws)
}

// WaitBatch polls a ticket until it finishes (or ctx is done) and returns
// the final status with decoded outcomes.
func (c *Client) WaitBatch(ctx context.Context, id string) (BatchStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return BatchStatus{}, err
		}
		if st.State == wire.StateDone || st.State == wire.StateCanceled {
			return st, nil
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return BatchStatus{}, ctx.Err()
		}
	}
}

// Cancel cancels a remote ticket.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, nil)
}

func decodeStatus(ws wire.JobStatus) (BatchStatus, error) {
	st := BatchStatus{ID: ws.ID, State: ws.State}
	if ws.Error != "" {
		st.Err = &wire.RemoteError{Msg: ws.Error}
	}
	if ws.Outcomes == nil {
		return st, nil
	}
	st.Outcomes = make([]CompileOutcome, len(ws.Outcomes))
	for i, wo := range ws.Outcomes {
		out, err := wo.Decode()
		if err != nil {
			return BatchStatus{}, fmt.Errorf("outcome %d: %w", i, err)
		}
		st.Outcomes[i] = out
	}
	return st, nil
}
