package clusched

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"clusched/internal/wire"
)

// Client speaks to a clusched-serve compilation service; it is the remote
// implementation of Backend. Results come back through the wire codec,
// which rebuilds and re-verifies every schedule — a Result obtained
// remotely is as trustworthy as one compiled in-process, and carries the
// full Schedule and Placement (so kernels can be printed and pipelines
// expanded locally).
//
// Stream consumes the service's NDJSON push endpoint
// (GET /batch/{id}/stream): each outcome arrives the moment the server
// finishes it, with no polling. The poll loop (WaitBatch) remains as a
// fallback for older servers and for callers that want the final status in
// one call; it backs off with jitter instead of hammering a fixed
// interval.
//
// The zero Client is not usable; call NewRemote (or NewClient).
type Client struct {
	base string
	hc   *http.Client
	// timeout bounds each unary exchange (see DefaultClientTimeout); the
	// streaming path is exempt.
	timeout time.Duration
	// PollInterval is the initial interval of WaitBatch's fallback poll
	// loop (default 50ms, growing to pollMaxInterval with jitter).
	PollInterval time.Duration
	// RequestTraces asks the server to record an execution trace for every
	// batch this client submits; fetch it with Trace once the ticket
	// finishes. Servers that predate tracing ignore the request.
	RequestTraces bool
}

// DefaultClientTimeout bounds each unary HTTP exchange (submit, status,
// stats, blocking compile) when NewClient is not given WithTimeout. It is
// deliberately generous — a blocking /compile?wait=1 spans a full
// compilation — while still guaranteeing that a wedged server cannot hang
// a caller forever. WithTimeout(0) disables the bound.
const DefaultClientTimeout = 5 * time.Minute

// Fallback poll pacing: the first probe comes quickly (most batches are
// small), then the interval grows geometrically to a lazy cap, each wait
// jittered ±25% so a fleet of clients polling one server does not beat on
// it in lockstep.
const (
	pollBaseInterval = 50 * time.Millisecond
	pollMaxInterval  = 2 * time.Second
	pollGrowth       = 1.6
)

// NewClient returns a Client for the service at base (e.g.
// "http://localhost:8357"). Remote-backend options apply (WithHTTPClient,
// WithTimeout, WithPollInterval); NewRemote is the same constructor under
// the v2 naming.
func NewClient(base string, opts ...Option) *Client {
	s := applySettings("NewRemote", scopeClient, opts)
	c := &Client{base: strings.TrimRight(base, "/"), hc: s.client.httpClient, timeout: DefaultClientTimeout}
	if c.hc == nil {
		c.hc = &http.Client{}
	}
	if s.client.hasTimeout {
		c.timeout = s.client.timeout
	}
	if s.client.pollInterval > 0 {
		c.PollInterval = s.client.pollInterval
	}
	return c
}

// RemoteStats is the service's /stats answer.
type RemoteStats = wire.ServiceStats

// QueueFullError reports an admission-control rejection (HTTP 429); the
// caller should retry after the hinted delay.
type QueueFullError struct {
	RetryAfter time.Duration
}

// Error implements error.
func (e *QueueFullError) Error() string {
	return fmt.Sprintf("clusched: service queue full, retry after %v", e.RetryAfter)
}

// do sends one JSON request and decodes the JSON answer into out,
// translating error answers. Unary exchanges are bounded by the client
// timeout; the streaming path bypasses do.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var er wire.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err == nil && er.Error != "" {
			if resp.StatusCode == http.StatusTooManyRequests {
				return &QueueFullError{RetryAfter: time.Duration(er.RetryAfterMS) * time.Millisecond}
			}
			return fmt.Errorf("clusched: service: %s", er.Error)
		}
		return fmt.Errorf("clusched: service answered %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health reports whether the service is up and accepting work.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Stats fetches the service metrics.
func (c *Client) Stats(ctx context.Context) (RemoteStats, error) {
	var st RemoteStats
	err := c.do(ctx, http.MethodGet, "/stats", nil, &st)
	return st, err
}

// Compile compiles one job remotely (POST /compile?wait=1, blocking until
// the service finishes): the unary half of Backend. Callers that care
// whether the service answered from its cache should use Do.
func (c *Client) Compile(ctx context.Context, job CompileJob) (*Result, error) {
	out, err := c.Do(ctx, job)
	if err != nil {
		return nil, err
	}
	return out.Result, out.Err
}

// Do compiles one job remotely and returns the full outcome, including
// whether the service answered from its cache.
func (c *Client) Do(ctx context.Context, job CompileJob) (CompileOutcome, error) {
	wj, err := wire.EncodeJob(job)
	if err != nil {
		return CompileOutcome{}, err
	}
	var st wire.JobStatus
	if err := c.do(ctx, http.MethodPost, "/compile?wait=1", wj, &st); err != nil {
		return CompileOutcome{}, err
	}
	if len(st.Outcomes) != 1 {
		return CompileOutcome{}, fmt.Errorf("clusched: service answered %d outcomes for one job (state %s, %s)",
			len(st.Outcomes), st.State, st.Error)
	}
	out, err := st.Outcomes[0].Decode()
	if err != nil {
		return CompileOutcome{}, err
	}
	out.Job = job
	return out, nil
}

// Stream implements Backend over the service's NDJSON push endpoint: it
// submits the batch, opens GET /batch/{id}/stream and yields each outcome
// the moment the server finishes it — true server push, no polling. Every
// job yields exactly once; submit or transport failures surface as the
// outcome error of every job the stream had not yet delivered. Against an
// older server without the stream endpoint, Stream falls back to the
// jittered poll loop and yields the batch at the end.
func (c *Client) Stream(ctx context.Context, jobs []CompileJob) iter.Seq2[int, CompileOutcome] {
	return func(yield func(int, CompileOutcome) bool) {
		if len(jobs) == 0 {
			return
		}
		delivered := make([]bool, len(jobs))
		// fail stamps every undelivered job with err; it returns false when
		// the consumer stopped the iteration.
		fail := func(err error) bool {
			for i := range jobs {
				if !delivered[i] {
					delivered[i] = true
					if !yield(i, CompileOutcome{Job: jobs[i], Err: err}) {
						return false
					}
				}
			}
			return true
		}
		id, err := c.SubmitBatch(ctx, jobs, 0)
		if err != nil {
			fail(err)
			return
		}
		c.streamTicket(ctx, id, jobs, delivered, yield, fail)
	}
}

// errNoStreamEndpoint marks a server without GET /batch/{id}/stream.
var errNoStreamEndpoint = errors.New("clusched: service has no stream endpoint")

// errStreamCut marks a transport failure after the stream was successfully
// opened: the server knows the ticket and keeps compiling it, so the poll
// path can resume the batch instead of failing the undelivered suffix.
// Deliberate server answers (404 for an unknown ticket, protocol-violation
// frames, the idle watchdog) are NOT cuts — resuming those would poll a
// ticket the server disowned or a stream the client cannot trust.
var errStreamCut = errors.New("clusched: stream cut mid-batch")

// abandonTicket best-effort cancels a ticket whose consumer walked away,
// so the server stops compiling work nobody will read. It runs on a
// detached context: the caller's is typically already cancelled.
func (c *Client) abandonTicket(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c.Cancel(ctx, id) // the ticket may already be done; ignore the answer
}

// streamTicket consumes the NDJSON stream of one submitted ticket.
func (c *Client) streamTicket(ctx context.Context, id string, jobs []CompileJob, delivered []bool,
	yield func(int, CompileOutcome) bool, fail func(error) bool) {
	err := c.readStream(ctx, id, jobs, delivered, yield)
	switch {
	case err == nil:
		return
	case errors.Is(err, errYieldStopped):
		// The consumer broke out of the iteration; yield must not be
		// called again, and the Backend contract says early stop abandons
		// the remaining work — tell the server so it stops compiling it.
		c.abandonTicket(id)
		return
	case errors.Is(err, errNoStreamEndpoint):
		// Older server: fall back to the poll loop and deliver the batch
		// when it finishes.
		c.pollRemainder(ctx, id, jobs, delivered, yield, fail)
	case errors.Is(err, errStreamCut) && ctx.Err() == nil:
		// The transport cut the stream but the batch is still alive on the
		// server (and the work the server already did is not lost). Resume
		// over the poll path: the delivered ledger guarantees the suffix
		// the stream never carried is yielded exactly once.
		c.pollRemainder(ctx, id, jobs, delivered, yield, fail)
	default:
		if ctx.Err() != nil {
			// The caller cancelled mid-stream; the server is still
			// compiling the rest of the batch for nobody.
			c.abandonTicket(id)
		}
		fail(err)
	}
}

// pollRemainder waits out a live ticket over the poll endpoint and yields
// every outcome the stream (if any) has not delivered yet. It is both the
// fallback for servers without the stream endpoint and the resume path
// when an NDJSON stream is cut mid-batch: the delivered ledger makes the
// hand-off exactly-once either way.
func (c *Client) pollRemainder(ctx context.Context, id string, jobs []CompileJob, delivered []bool,
	yield func(int, CompileOutcome) bool, fail func(error) bool) {
	st, werr := c.WaitBatch(ctx, id)
	if werr != nil {
		fail(werr)
		return
	}
	if len(st.Outcomes) != len(jobs) {
		werr := st.Err
		if werr == nil {
			werr = fmt.Errorf("clusched: service answered %d outcomes for %d jobs (ticket %s %s)",
				len(st.Outcomes), len(jobs), id, st.State)
		}
		fail(werr)
		return
	}
	for i, out := range st.Outcomes {
		if delivered[i] {
			continue
		}
		delivered[i] = true
		out.Job = jobs[i]
		if !yield(i, out) {
			return
		}
	}
}

// errYieldStopped signals that the consumer broke out of the iteration —
// not a failure, just "stop reading".
var errYieldStopped = errors.New("clusched: stream consumer stopped")

// readStream opens the NDJSON endpoint and yields outcome frames until the
// done frame. It returns errNoStreamEndpoint for servers predating the
// endpoint, nil after a complete stream (undelivered jobs have been
// stamped with the batch's terminal error), or the transport/protocol
// error that cut the stream short.
func (c *Client) readStream(ctx context.Context, id string, jobs []CompileJob, delivered []bool,
	yield func(int, CompileOutcome) bool) error {
	// No unary timeout here: the stream lives exactly as long as its
	// batch. ctx still cancels it at any moment.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/batch/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
		// A modern server answers 404 with a JSON error body for a ticket
		// it no longer knows (restart, retention pruning) — that is a real
		// failure, not a missing endpoint. Only a mux-level 404/405 (no
		// wire error payload) means the server predates streaming.
		var er wire.ErrorResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er); err == nil && er.Error != "" {
			return fmt.Errorf("clusched: service: %s", er.Error)
		}
		return errNoStreamEndpoint
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("clusched: stream answered %s", resp.Status)
	}

	// The stream is exempt from the unary timeout as a whole — it lives as
	// long as its batch — but each inter-frame gap is bounded: a server
	// that wedges (or a connection that dies without an RST) would
	// otherwise hang the caller forever. The watchdog closes the body,
	// which unblocks the decoder with an error we translate below.
	var (
		timedOut atomic.Bool
		idle     *time.Timer
	)
	if c.timeout > 0 {
		idle = time.AfterFunc(c.timeout, func() {
			timedOut.Store(true)
			resp.Body.Close()
		})
		defer idle.Stop()
	}

	dec := json.NewDecoder(resp.Body)
	var batchErr error
	sawDone := false
	for !sawDone {
		var f wire.Frame
		if err := dec.Decode(&f); err != nil {
			if timedOut.Load() {
				return fmt.Errorf("clusched: stream for ticket %s idle for %v, giving up", id, c.timeout)
			}
			// The server had accepted the stream (200, frames flowing), so
			// this is the transport dying mid-batch, not the server refusing
			// the ticket: mark it resumable over the poll path.
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("%w: ticket %s ended before its done frame", errStreamCut, id)
			}
			return fmt.Errorf("%w: ticket %s: %v", errStreamCut, id, err)
		}
		if idle != nil {
			idle.Reset(c.timeout)
		}
		// Unknown frame types and too-new hellos fail typed
		// (*wire.UnknownFrameError, *wire.SchemaError): a newer protocol is
		// an explicit error, never silently misread.
		if err := f.Validate(); err != nil {
			return err
		}
		switch f.Type {
		case wire.FrameHello:
			if f.Total != len(jobs) {
				return fmt.Errorf("clusched: stream for ticket %s announces %d jobs, submitted %d", id, f.Total, len(jobs))
			}
		case wire.FrameOutcome:
			if f.Index >= len(jobs) {
				return fmt.Errorf("clusched: stream outcome for job %d of a %d-job batch", f.Index, len(jobs))
			}
			if delivered[f.Index] {
				return fmt.Errorf("clusched: stream delivered job %d twice", f.Index)
			}
			out, derr := f.Outcome.Decode()
			if derr != nil {
				out = CompileOutcome{Err: derr}
			}
			out.Job = jobs[f.Index]
			delivered[f.Index] = true
			if !yield(f.Index, out) {
				return errYieldStopped
			}
		case wire.FrameDone:
			if f.Error != "" {
				batchErr = &wire.RemoteError{Msg: f.Error}
			}
			sawDone = true
		}
	}
	// Jobs the server never delivered (a batch cancelled while queued, or
	// retired early) inherit the batch's terminal error.
	missing := batchErr
	if missing == nil {
		missing = errors.New("clusched: stream finished without delivering this job")
	}
	for i := range jobs {
		if !delivered[i] {
			delivered[i] = true
			if !yield(i, CompileOutcome{Job: jobs[i], Err: missing}) {
				return errYieldStopped
			}
		}
	}
	return nil
}

// SubmitBatch submits jobs for asynchronous remote compilation and
// returns the ticket ID. timeout bounds the batch's remote lifetime
// (0 = the server's policy).
func (c *Client) SubmitBatch(ctx context.Context, jobs []CompileJob, timeout time.Duration) (string, error) {
	wjs := make([]wire.Job, len(jobs))
	for i, j := range jobs {
		wj, err := wire.EncodeJob(j)
		if err != nil {
			return "", fmt.Errorf("job %d: %w", i, err)
		}
		wjs[i] = wj
	}
	var sub wire.SubmitResponse
	req := wire.SubmitRequest{Jobs: wjs, TimeoutMS: timeout.Milliseconds(), Trace: c.RequestTraces}
	err := c.do(ctx, http.MethodPost, "/batch", req, &sub)
	return sub.ID, err
}

// Trace fetches a finished ticket's execution trace as Chrome trace-event
// JSON (GET /jobs/{id}/trace) — load it in chrome://tracing or Perfetto.
// The server records a trace only when the batch asked for one (see
// RequestTraces) or the server runs with -trace-jobs; otherwise the answer
// is an error.
func (c *Client) Trace(ctx context.Context, id string) ([]byte, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+id+"/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var er wire.ErrorResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er); err == nil && er.Error != "" {
			return nil, fmt.Errorf("clusched: service: %s", er.Error)
		}
		return nil, fmt.Errorf("clusched: service answered %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// BatchStatus is a remote ticket snapshot; Outcomes is nil until the
// ticket finishes.
type BatchStatus struct {
	ID    string
	State string
	// Deadline is the ticket's server-side lifetime bound (zero when the
	// ticket has none); WaitBatch caps its total polling against it.
	Deadline time.Time
	// RetryAfter is the server's poll-again hint for an unfinished ticket
	// (zero when the server offered none); WaitBatch prefers it over its
	// own backoff ladder.
	RetryAfter time.Duration
	// Outcomes is index-aligned with the submitted jobs; Job fields are
	// zero (the submitter already has them).
	Outcomes []CompileOutcome
	// Err summarizes the batch failure or cancellation, if any.
	Err error
}

// Status polls a ticket once.
func (c *Client) Status(ctx context.Context, id string) (BatchStatus, error) {
	var ws wire.JobStatus
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &ws); err != nil {
		return BatchStatus{}, err
	}
	return decodeStatus(ws)
}

// waitBatchGrace pads the ticket deadline before WaitBatch gives up: the
// server needs a moment past the deadline to cancel the ticket and publish
// the terminal status, and clocks are never perfectly aligned.
const waitBatchGrace = 2 * time.Second

// WaitBatch polls a ticket until it finishes (or ctx is done) and returns
// the final status with decoded outcomes. It is the fallback to Stream.
// Pacing prefers the server's own Retry-After hint — the server knows its
// backlog better than any client-side schedule — and only without one backs
// off geometrically from PollInterval (default 50ms) to a 2s cap; every
// wait is jittered ±25% so synchronized clients spread out instead of
// hammering the server in lockstep. Total polling is bounded by the
// ticket's own deadline (plus a small grace): once the server has reported
// a deadline, WaitBatch will not poll a doomed ticket forever — it makes
// one final probe past the deadline and then gives up with an error naming
// the ticket's state.
func (c *Client) WaitBatch(ctx context.Context, id string) (BatchStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = pollBaseInterval
	}
	var capC <-chan time.Time // fires past the ticket deadline + grace
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return BatchStatus{}, err
		}
		if st.State == wire.StateDone || st.State == wire.StateCanceled {
			return st, nil
		}
		if capC == nil && !st.Deadline.IsZero() {
			t := time.NewTimer(time.Until(st.Deadline.Add(waitBatchGrace)))
			defer t.Stop()
			capC = t.C
		}
		// The server's hint wins over the local ladder; clamp it into the
		// ladder's range so a misbehaving hint can neither busy-poll nor
		// park the client for minutes.
		wait := interval
		hinted := st.RetryAfter > 0
		if hinted {
			wait = min(max(st.RetryAfter, pollBaseInterval), pollMaxInterval)
		}
		// ±25% jitter around the chosen interval.
		wait = time.Duration(float64(wait) * (0.75 + 0.5*rand.Float64()))
		select {
		case <-time.After(wait):
		case <-capC:
			// The ticket outlived its own deadline; one last probe (the
			// server normally cancels it right at the deadline), then stop
			// polling a ticket that can no longer finish normally.
			st, err := c.Status(ctx, id)
			if err == nil && (st.State == wire.StateDone || st.State == wire.StateCanceled) {
				return st, nil
			}
			if err != nil {
				return BatchStatus{}, err
			}
			return BatchStatus{}, fmt.Errorf(
				"clusched: ticket %s still %s past its deadline (+%v grace); giving up the poll",
				id, st.State, waitBatchGrace)
		case <-ctx.Done():
			return BatchStatus{}, ctx.Err()
		}
		if !hinted {
			if next := time.Duration(float64(interval) * pollGrowth); next < pollMaxInterval {
				interval = next
			} else {
				interval = pollMaxInterval
			}
		}
	}
}

// Cancel cancels a remote ticket.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, nil)
}

func decodeStatus(ws wire.JobStatus) (BatchStatus, error) {
	st := BatchStatus{ID: ws.ID, State: ws.State}
	if ws.DeadlineMS > 0 {
		st.Deadline = time.UnixMilli(ws.DeadlineMS)
	}
	if ws.RetryAfterMS > 0 {
		st.RetryAfter = time.Duration(ws.RetryAfterMS) * time.Millisecond
	}
	if ws.Error != "" {
		st.Err = &wire.RemoteError{Msg: ws.Error}
	}
	if ws.Outcomes == nil {
		return st, nil
	}
	st.Outcomes = make([]CompileOutcome, len(ws.Outcomes))
	for i, wo := range ws.Outcomes {
		out, err := wo.Decode()
		if err != nil {
			return BatchStatus{}, fmt.Errorf("outcome %d: %w", i, err)
		}
		st.Outcomes[i] = out
	}
	return st, nil
}
