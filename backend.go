package clusched

// The v2 public surface: one canonical, context-first contract for "compile
// these loops", with where-it-runs as a swappable backend. The in-process
// engine (NewLocal) and the remote service client (NewRemote) implement the
// same interface, so tools and experiments program against Backend and turn
// local-vs-remote into configuration. Functional options cover both the
// per-job pipeline options (WithStrategy, WithReplication, …) and the
// backend construction knobs (WithWorkers, WithCacheSize, WithTimeout, …);
// the v1 structs (Options, CompilerConfig) remain as the underlying types.

import (
	"context"
	"fmt"
	"iter"
	"net/http"
	"time"

	"clusched/internal/driver"
)

// Backend is the canonical compilation contract: one unary call and one
// streaming batch call. It is implemented in-process by *Compiler
// (NewLocal) and remotely by *Client (NewRemote); both return bit-identical
// Results for the same jobs — the remote path re-verifies every schedule on
// decode — so callers can swap backends freely.
type Backend interface {
	// Compile compiles one job. The compilation honours ctx: once it is
	// done, the job aborts with ctx.Err() at the backend's next
	// cancellation point.
	Compile(ctx context.Context, job CompileJob) (*Result, error)
	// Stream compiles a batch and yields each outcome the moment it
	// finishes, tagged with the index of its job in the batch — yield
	// order follows completion, not submission. Every job yields exactly
	// once: cancelling ctx mid-stream leaves the finished outcomes intact
	// and stamps every remaining job's outcome with the cancellation.
	// Stopping the iteration early abandons the remaining work. For
	// deterministic index-ordered results, collect with Collect.
	Stream(ctx context.Context, jobs []CompileJob) iter.Seq2[int, CompileOutcome]
}

// Both backends satisfy the contract — this is the compile-time pin behind
// the conformance suite.
var (
	_ Backend = (*Compiler)(nil)
	_ Backend = (*Client)(nil)
)

// Progress observes batch completion on a local backend (see
// CompilerConfig.Progress).
type Progress = driver.Progress

// settings is the merged configuration the functional options mutate; each
// constructor reads the part it understands.
type settings struct {
	opts    Options
	engine  CompilerConfig
	client  clientConfig
	cluster clusterConfig
}

// clientConfig collects the remote-backend knobs.
type clientConfig struct {
	httpClient   *http.Client
	timeout      time.Duration
	hasTimeout   bool
	pollInterval time.Duration
}

// clusterConfig collects the fleet-backend knobs (see NewCluster).
type clusterConfig struct {
	hedge          time.Duration
	hasHedge       bool
	nodeInFlight   int
	healthInterval time.Duration
	hasHealth      bool
}

// optionScope classifies where an Option applies, so a constructor given
// an option from the wrong group can reject it loudly instead of silently
// compiling the wrong variant.
type optionScope uint8

const (
	scopeJob optionScope = 1 << iota
	scopeEngine
	scopeClient
	scopeCluster
)

// String names the scope's home constructor for the misuse panic.
func (sc optionScope) String() string {
	switch sc {
	case scopeJob:
		return "a compilation option (use NewOptions and set CompileJob.Opts)"
	case scopeEngine:
		return "a local-engine option (use NewLocal)"
	case scopeClient:
		return "a remote-client option (use NewRemote or NewCluster)"
	case scopeCluster:
		return "a fleet option (use NewCluster)"
	}
	return "an unknown option"
}

// Option configures NewOptions, NewLocal or NewRemote. Options are grouped
// by what they configure — compilation options (WithStrategy,
// WithReplication, WithLengthReplication, WithZeroBusLatency,
// WithMacroReplication, WithMaxII, WithIgnoreRegisterPressure,
// WithVerification), local-engine construction (WithWorkers, WithCacheSize,
// WithProgress, WithSpeculation) and remote-client construction (WithHTTPClient,
// WithTimeout, WithPollInterval). Passing an option to a constructor
// outside its group panics with the option's name and where it belongs:
// NewLocal(WithReplication(true)) would otherwise silently compile every
// job without replication, which is far worse than a loud construction
// failure.
type Option struct {
	name  string
	scope optionScope
	apply func(*settings)
}

// applySettings runs the options through their checks for one constructor.
func applySettings(constructor string, allowed optionScope, opts []Option) settings {
	var s settings
	for _, o := range opts {
		if o.scope&allowed == 0 {
			panic(fmt.Sprintf("clusched: %s does not accept %s — it is %s",
				constructor, o.name, o.scope))
		}
		o.apply(&s)
	}
	return s
}

func jobOption(name string, f func(*settings)) Option {
	return Option{name: name, scope: scopeJob, apply: f}
}

func engineOption(name string, f func(*settings)) Option {
	return Option{name: name, scope: scopeEngine, apply: f}
}

func clientOption(name string, f func(*settings)) Option {
	return Option{name: name, scope: scopeClient, apply: f}
}

func clusterOption(name string, f func(*settings)) Option {
	return Option{name: name, scope: scopeCluster, apply: f}
}

// WithStrategy selects the scheduling strategy by registry name (see
// Strategies): "paper", "unified", "uas" or "moddist".
func WithStrategy(name string) Option {
	return jobOption("WithStrategy", func(s *settings) { s.opts.Strategy = name })
}

// WithReplication toggles the §3 instruction-replication pass (the paper's
// contribution).
func WithReplication(on bool) Option {
	return jobOption("WithReplication", func(s *settings) { s.opts.Replicate = on })
}

// WithLengthReplication toggles the §5.1 schedule-length replication
// extension (implies nothing about WithReplication; enable both for the
// paper's combined variant).
func WithLengthReplication(on bool) Option {
	return jobOption("WithLengthReplication", func(s *settings) { s.opts.LengthReplicate = on })
}

// WithZeroBusLatency schedules with zero-latency buses that still consume
// bandwidth: the Fig. 12 upper bound.
func WithZeroBusLatency(on bool) Option {
	return jobOption("WithZeroBusLatency", func(s *settings) { s.opts.ZeroBusLatency = on })
}

// WithMacroReplication swaps in the §5.2 macro-node replication heuristic.
func WithMacroReplication(on bool) Option {
	return jobOption("WithMacroReplication", func(s *settings) { s.opts.UseMacroReplication = on })
}

// WithMaxII overrides the II search bound (0 = automatic).
func WithMaxII(n int) Option {
	return jobOption("WithMaxII", func(s *settings) { s.opts.MaxII = n })
}

// WithIgnoreRegisterPressure disables the register-file feasibility check.
func WithIgnoreRegisterPressure(on bool) Option {
	return jobOption("WithIgnoreRegisterPressure", func(s *settings) { s.opts.IgnoreRegisterPressure = on })
}

// WithVerification re-checks every accepted schedule against the dependence
// and resource constraints (cheap; on by default in the CLIs).
func WithVerification(on bool) Option {
	return jobOption("WithVerification", func(s *settings) { s.opts.VerifySchedules = on })
}

// WithWorkers bounds a local backend's concurrent compilations (≤0 =
// GOMAXPROCS).
func WithWorkers(n int) Option {
	return engineOption("WithWorkers", func(s *settings) { s.engine.Workers = n })
}

// WithCacheSize bounds a local backend's in-memory result cache in entries
// (0 = the engine default, negative disables caching).
func WithCacheSize(n int) Option {
	return engineOption("WithCacheSize", func(s *settings) { s.engine.CacheSize = n })
}

// WithProgress subscribes to a local backend's batch-completion callbacks.
func WithProgress(fn Progress) Option {
	return engineOption("WithProgress", func(s *settings) { s.engine.Progress = fn })
}

// WithSpeculation makes a local backend race up to k candidate initiation
// intervals concurrently inside each compilation (the speculative multi-II
// search), bounded globally so a busy worker pool is never oversubscribed.
// It is an execution detail: results are bit-identical to the plain
// search and cache identities do not change. k ≤ 1 disables it.
func WithSpeculation(k int) Option {
	return engineOption("WithSpeculation", func(s *settings) { s.engine.Speculation = k })
}

// WithTrace makes a local backend record every compilation into tr: job
// spans per worker, cache lookups, passes, II attempts and speculative
// lanes. Tracing is an observation detail — results and cache identities
// are unchanged — and a nil tr keeps the engine on the allocation-free
// untraced path. Export the recording with tr.WriteJSON (Chrome
// trace-event format). Per-job traces can instead ride on
// CompileJob.Trace, which takes precedence.
func WithTrace(tr *Trace) Option {
	return engineOption("WithTrace", func(s *settings) { s.engine.Trace = tr })
}

// WithHTTPClient makes a remote backend use the given HTTP client (custom
// transport, proxy, TLS). The client's own Timeout should stay zero —
// per-call deadlines come from WithTimeout, and the streaming path must
// outlive any fixed budget.
func WithHTTPClient(hc *http.Client) Option {
	return clientOption("WithHTTPClient", func(s *settings) { s.client.httpClient = hc })
}

// WithTimeout bounds each unary exchange of a remote backend (submit,
// poll, stats — not the NDJSON stream, which lives as long as its batch).
// 0 disables the bound; without this option NewRemote applies
// DefaultClientTimeout.
func WithTimeout(d time.Duration) Option {
	return clientOption("WithTimeout", func(s *settings) { s.client.timeout = d; s.client.hasTimeout = true })
}

// WithPollInterval sets the initial interval of WaitBatch's fallback poll
// loop (the backoff grows and jitters from there; see Client.WaitBatch).
func WithPollInterval(d time.Duration) Option {
	return clientOption("WithPollInterval", func(s *settings) { s.client.pollInterval = d })
}

// WithHedge controls a fleet backend's straggler hedging — the duplicate
// dispatch fired when a node sits on a job past the hedge delay (first
// answer wins, the loser is cancelled; results are content-addressed and
// deterministic, so the duplicate can never change the answer). d > 0
// fixes the delay; 0 (the default) adapts it to a high percentile of
// observed dispatch latency; d < 0 disables hedging.
func WithHedge(d time.Duration) Option {
	return clusterOption("WithHedge", func(s *settings) { s.cluster.hedge = d; s.cluster.hasHedge = true })
}

// WithNodeInFlight bounds a fleet backend's concurrent dispatches per node
// (the window work stealing balances against; ≤0 = the cluster default).
// Size the servers' -runners and -max-inflight at or above it, or the
// window just queues server-side.
func WithNodeInFlight(n int) Option {
	return clusterOption("WithNodeInFlight", func(s *settings) { s.cluster.nodeInFlight = n })
}

// WithHealthInterval paces a fleet backend's membership probes (jittered
// ±20%; 0 = the cluster default, negative disables probing).
func WithHealthInterval(d time.Duration) Option {
	return clusterOption("WithHealthInterval", func(s *settings) { s.cluster.healthInterval = d; s.cluster.hasHealth = true })
}

// NewOptions builds compilation Options functionally — the v2 spelling of
// the Options literal:
//
//	opts := clusched.NewOptions(
//		clusched.WithStrategy("paper"),
//		clusched.WithReplication(true),
//	)
func NewOptions(opts ...Option) Options {
	return applySettings("NewOptions", scopeJob, opts).opts
}

// NewLocal builds the in-process Backend: the concurrent batch engine with
// a bounded worker pool and a shared result cache. Engine-level options
// (WithWorkers, WithCacheSize, WithProgress) apply; job-level options ride
// on each CompileJob.
func NewLocal(opts ...Option) *Compiler {
	return NewCompiler(applySettings("NewLocal", scopeEngine, opts).engine)
}

// NewRemote builds the remote Backend: a client for the clusched-serve
// instance at base (e.g. "http://localhost:8357"). Client-level options
// (WithHTTPClient, WithTimeout, WithPollInterval) apply.
func NewRemote(base string, opts ...Option) *Client {
	return NewClient(base, opts...)
}

// Collect drains b.Stream(ctx, jobs) into an index-aligned outcome slice:
// outcomes[i] is the outcome of jobs[i] no matter how the backend scheduled
// the work, so batch output is deterministic — the CompileAll semantics,
// over any Backend. The error is nil when every job succeeded, otherwise a
// *BatchError aggregating every failure; outcomes is complete either way.
func Collect(ctx context.Context, b Backend, jobs []CompileJob) ([]CompileOutcome, error) {
	outcomes := make([]CompileOutcome, len(jobs))
	for i, out := range b.Stream(ctx, jobs) {
		if i >= 0 && i < len(outcomes) {
			outcomes[i] = out
		}
	}
	// A conforming backend yields every index exactly once; stamp any gap
	// so a misbehaving one surfaces as a typed batch error, not a nil
	// dereference three layers up.
	for i := range outcomes {
		if outcomes[i].Result == nil && outcomes[i].Err == nil {
			err := ctx.Err()
			if err == nil {
				err = fmt.Errorf("clusched: backend yielded no outcome for job %d", i)
			}
			outcomes[i] = CompileOutcome{Job: jobs[i], Err: err}
		}
	}
	return outcomes, driver.AggregateError(outcomes)
}
