// Paperfigure regenerates a single figure of the paper programmatically —
// here Fig. 9, the applu II-reduction study — against the synthetic
// SPECfp95 workload via the public API, without going through the
// paperbench command. It demonstrates how to drive the pipeline over many
// loops and aggregate results.
package main

import (
	"fmt"
	"log"

	"clusched"
)

func main() {
	loops := clusched.BenchmarkLoops("applu")
	fmt.Printf("applu: %d modulo-schedulable loops, trip counts around %.1f\n\n",
		len(loops), avgIters(loops))

	fmt.Printf("%-10s  %14s  %10s\n", "config", "II reduction %", "IPC gain %")
	for _, name := range []string{"2c1b2l64r", "4c1b2l64r", "4c2b2l64r"} {
		m := clusched.MustParseMachine(name)
		var redSum float64
		var instr, cbase, crepl float64
		for _, l := range loops {
			base, err := clusched.CompileBaseline(l.Graph, m)
			if err != nil {
				log.Fatal(err)
			}
			repl, err := clusched.CompileReplicated(l.Graph, m)
			if err != nil {
				log.Fatal(err)
			}
			redSum += 1 - float64(repl.II)/float64(base.II)
			instr += l.DynamicInstrs()
			cbase += base.Schedule.CyclesFor(l.AvgIters) * float64(l.Visits)
			crepl += repl.Schedule.CyclesFor(l.AvgIters) * float64(l.Visits)
		}
		iiRed := 100 * redSum / float64(len(loops))
		ipcGain := 100 * ((instr/crepl)/(instr/cbase) - 1)
		fmt.Printf("%-10s  %14.1f  %10.1f\n", name, iiRed, ipcGain)
	}
	fmt.Println("\nPaper: replication reduces applu's II by 10-20% depending on the")
	fmt.Println("configuration, yet the IPC barely moves because each loop visit runs")
	fmt.Println("only ~4 iterations, so the prolog/epilog dominates (§4, Fig. 9).")
}

func avgIters(loops []*clusched.Loop) float64 {
	s := 0.0
	for _, l := range loops {
		s += l.AvgIters
	}
	return s / float64(len(loops))
}
