// Fleet: shard one compilation batch across three servers with
// clusched.NewCluster, then prove the routing is cache-affine — isomorphic
// clones of a loop land on the same node as their original and are served
// by that node's semantic cache tier instead of recompiling.
//
// The three "servers" here are in-process httptest instances over the same
// service the clusched-serve binary runs, so the example is self-contained
// (go run ./examples/fleet). A real deployment starts real processes:
//
//	clusched-serve -addr :8357 -runners 6 -max-inflight 8 &
//	clusched-serve -addr :8358 -runners 6 -max-inflight 8 &
//	clusched-serve -addr :8359 -runners 6 -max-inflight 8 &
//
// and hands their URLs to clusched.NewCluster — everything below is
// unchanged. Size each server's -runners at or above the cluster's
// per-node window (WithNodeInFlight, default 4, plus headroom for hedged
// duplicates): every unary dispatch is its own one-job ticket.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"clusched"
	"clusched/internal/ddg"
	"clusched/internal/service"
)

func main() {
	ctx := context.Background()

	// Three nodes. Runners sized above the cluster's per-node window (see
	// the package comment); each keeps its own result cache, which is
	// exactly why routing affinity matters.
	var urls []string
	for range 3 {
		s := service.New(service.Config{Runners: 6})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	cl := clusched.NewCluster(urls, clusched.WithNodeInFlight(4))
	defer cl.Close()

	// Round 1: a fresh corpus — every tomcatv loop, replicated pipeline.
	m := clusched.MustParseMachine("4c2b2l64r")
	repl := clusched.NewOptions(clusched.WithReplication(true))
	loops := clusched.BenchmarkLoops("tomcatv")
	jobs := make([]clusched.CompileJob, len(loops))
	for i, l := range loops {
		jobs[i] = clusched.CompileJob{Graph: l.Graph, Machine: m, Opts: repl}
	}
	if _, err := clusched.Collect(ctx, cl, jobs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round 1: %d fresh loops sharded across %d nodes\n", len(jobs), len(urls))

	// Round 2: an isomorphic clone of every loop — renamed, reordered, the
	// same dependence structure. Consistent hashing keys on the canonical
	// fingerprint, which clones share, so each clone is routed to the node
	// that already holds its original's result and is answered by that
	// node's semantic cache tier (a schedule remap, not a recompilation).
	clones := make([]clusched.CompileJob, len(loops))
	for i, l := range loops {
		g := ddg.PermuteRandom(l.Graph, fmt.Sprintf("%s-clone", l.Graph.Name), int64(i)+1)
		clones[i] = clusched.CompileJob{Graph: g, Machine: m, Opts: repl}
	}
	if _, err := clusched.Collect(ctx, cl, clones); err != nil {
		log.Fatal(err)
	}

	// The fleet rollup: per-node distribution plus the semantic-hit sum
	// that the affinity argument stands on.
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	fs := cl.FleetStats(sctx)
	fmt.Printf("round 2: %d isomorphic clones, %d served by semantic cache tiers\n\n",
		len(clones), fs.SemanticHits+fs.SemanticStoreHits)
	fmt.Printf("%-28s %8s %8s %8s %9s\n", "node", "jobs", "steals", "compiled", "sem.hits")
	for _, ns := range fs.Nodes {
		compiled, sem := uint64(0), uint64(0)
		if ns.Service != nil {
			compiled = ns.Service.JobsCompiled
			sem = ns.Service.Cache.SemanticHits + ns.Service.Cache.SemanticStoreHits
		}
		fmt.Printf("%-28s %8d %8d %8d %9d\n", ns.Name, ns.Jobs, ns.Steals, compiled, sem)
	}
	if got, want := fs.SemanticHits+fs.SemanticStoreHits, uint64(len(clones)); got < want {
		log.Fatalf("affinity broken: only %d of %d clones hit a semantic tier", got, want)
	}
	fmt.Println("\nevery clone was answered by the node that compiled its original")
}
