// Strategy shootout: one DSP kernel, every registered scheduling strategy.
// The paper's argument is comparative — its multilevel partition +
// replication pipeline against unified-assign-and-schedule designs and
// naive pre-partitioning — and the strategy registry makes that comparison
// a loop instead of a citation: compile the same loop under each strategy
// and read the II/comms/speedup table.
//
// The kernel is an unrolled 4-tap complex FIR filter (the bread-and-butter
// clustered-DSP workload) on the paper's headline 4-cluster configuration.
package main

import (
	"fmt"
	"log"

	"clusched"
)

// buildFIR builds the unrolled complex FIR loop body (see
// examples/dspkernel for the source loop).
func buildFIR(taps int) *clusched.Graph {
	b := clusched.NewLoop(fmt.Sprintf("cfir%d", taps))
	idx := b.Node("idx", clusched.OpIAdd)
	b.Edge(idx, idx, 1)

	sumR, sumI := -1, -1
	for t := 0; t < taps; t++ {
		off := b.Node(fmt.Sprintf("off%d", t), clusched.OpIAdd)
		b.Edge(idx, off, 0)
		xr := b.Node(fmt.Sprintf("xr%d", t), clusched.OpLoad)
		xi := b.Node(fmt.Sprintf("xi%d", t), clusched.OpLoad)
		b.Edge(off, xr, 0)
		b.Edge(off, xi, 0)

		rr := b.Node(fmt.Sprintf("rr%d", t), clusched.OpFMul)
		ii := b.Node(fmt.Sprintf("ii%d", t), clusched.OpFMul)
		ri := b.Node(fmt.Sprintf("ri%d", t), clusched.OpFMul)
		ir := b.Node(fmt.Sprintf("ir%d", t), clusched.OpFMul)
		b.Edge(xr, rr, 0)
		b.Edge(xi, ii, 0)
		b.Edge(xr, ri, 0)
		b.Edge(xi, ir, 0)

		subR := b.Node(fmt.Sprintf("subR%d", t), clusched.OpFAdd)
		b.Edge(rr, subR, 0)
		b.Edge(ii, subR, 0)
		addI := b.Node(fmt.Sprintf("addI%d", t), clusched.OpFAdd)
		b.Edge(ri, addI, 0)
		b.Edge(ir, addI, 0)

		if sumR < 0 {
			sumR, sumI = subR, addI
			continue
		}
		nr := b.Node(fmt.Sprintf("accR%d", t), clusched.OpFAdd)
		b.Edge(sumR, nr, 0)
		b.Edge(subR, nr, 0)
		ni := b.Node(fmt.Sprintf("accI%d", t), clusched.OpFAdd)
		b.Edge(sumI, ni, 0)
		b.Edge(addI, ni, 0)
		sumR, sumI = nr, ni
	}
	stR := b.Node("stR", clusched.OpStore)
	b.Edge(sumR, stR, 0)
	b.Edge(idx, stR, 0)
	stI := b.Node("stI", clusched.OpStore)
	b.Edge(sumI, stI, 0)
	b.Edge(idx, stI, 0)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func main() {
	g := buildFIR(4)
	m := clusched.MustParseMachine("4c2b2l64r")
	const iters = 256

	fmt.Printf("strategy shootout: %v on %s\n\n", g, m)
	fmt.Printf("%-9s %4s %4s %6s %6s %9s  %s\n", "strategy", "MII", "II", "len", "comms", "speedup", "description")

	var ref *clusched.Result
	for _, name := range clusched.Strategies() {
		opts := clusched.Options{Strategy: name}
		if name == "paper" {
			// The paper chain runs its headline configuration; the rivals
			// have no replication pass to enable.
			opts.Replicate = true
		}
		res, err := clusched.Compile(g, m, opts)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if ref == nil {
			ref = res // first in sorted order; speedups are relative to it
		}
		fmt.Printf("%-9s %4d %4d %6d %6d %8.2fx  %s\n",
			name, res.MII, res.II, res.Length, res.Comms,
			res.Speedup(ref, iters), clusched.StrategyDescription(name))
	}
	fmt.Printf("\nspeedup is cycles(%s)/cycles(strategy) for %d iterations; >1 is faster.\n",
		clusched.Strategies()[0], iters)
}
