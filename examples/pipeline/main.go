// Pipeline: compile a loop for a clustered machine, expand the modulo
// schedule into software-pipelined VLIW code (prolog / MVE-unrolled kernel
// / epilog with physical registers), print the assembly, and verify the
// emitted code end-to-end by executing it against a register-file model and
// comparing every stored value with a direct evaluation of the loop.
package main

import (
	"fmt"
	"log"

	"clusched"
)

func main() {
	// A dot-product-with-update loop: two loads, multiply, accumulate into
	// a loop-carried sum, plus an independent scaled store.
	b := clusched.NewLoop("dotscale")
	idx := b.Node("idx", clusched.OpIAdd)
	b.Edge(idx, idx, 1)
	x := b.Node("x", clusched.OpLoad)
	y := b.Node("y", clusched.OpLoad)
	b.Edge(idx, x, 0)
	b.Edge(idx, y, 0)
	m := b.Node("m", clusched.OpFMul)
	b.Edge(x, m, 0)
	b.Edge(y, m, 0)
	acc := b.Node("acc", clusched.OpFAdd)
	b.Edge(m, acc, 0)
	b.Edge(acc, acc, 1) // the running sum
	sc := b.Node("sc", clusched.OpFMul)
	b.Edge(x, sc, 0)
	st := b.Node("st", clusched.OpStore)
	b.Edge(sc, st, 0)
	b.Edge(idx, st, 0)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	mach := clusched.MustParseMachine("2c1b2l64r")
	res, err := clusched.CompileReplicated(g, mach)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s on %s: II=%d (MII=%d), %d stages\n\n",
		g.Name, mach, res.II, res.MII, res.SC)

	p, err := clusched.ExpandPipeline(res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.Format())

	// Execute the emitted code and check it against direct evaluation.
	iters := p.SC - 1 + 4*p.MVE
	if err := p.VerifyAgainstReference(iters); err != nil {
		log.Fatalf("pipeline verification FAILED: %v", err)
	}
	fmt.Printf("\npipeline verified: %d iterations produce identical store traces\n", iters)
}
