// DSP kernel: the paper motivates clustering with DSP processors
// (TI TMS320C6x, TigerSHARC, Lx, ...). This example software-pipelines a
// complex FIR filter — the bread-and-butter DSP kernel — across every
// clustered configuration of the paper and compares the baseline scheduler
// against instruction replication.
//
//	for n := range out {
//	    accR, accI := 0, 0
//	    // unrolled 4-tap complex multiply-accumulate
//	    for t := 0; t < 4; t++ {
//	        accR += xR[n+t]*cR[t] - xI[n+t]*cI[t]
//	        accI += xR[n+t]*cI[t] + xI[n+t]*cR[t]
//	    }
//	    outR[n], outI[n] = accR, accI
//	}
package main

import (
	"fmt"
	"log"

	"clusched"
)

// buildFIR builds the unrolled complex FIR loop body: taps 4-tap complex
// MAC with a shared index computation.
func buildFIR(taps int) *clusched.Graph {
	b := clusched.NewLoop(fmt.Sprintf("cfir%d", taps))
	idx := b.Node("idx", clusched.OpIAdd)
	b.Edge(idx, idx, 1)

	var sumR, sumI int = -1, -1
	for t := 0; t < taps; t++ {
		off := b.Node(fmt.Sprintf("off%d", t), clusched.OpIAdd)
		b.Edge(idx, off, 0)
		xr := b.Node(fmt.Sprintf("xr%d", t), clusched.OpLoad)
		xi := b.Node(fmt.Sprintf("xi%d", t), clusched.OpLoad)
		b.Edge(off, xr, 0)
		b.Edge(off, xi, 0)

		// Four products of the complex MAC; coefficients are loop-invariant
		// registers, so they do not appear as loads.
		rr := b.Node(fmt.Sprintf("rr%d", t), clusched.OpFMul)
		ii := b.Node(fmt.Sprintf("ii%d", t), clusched.OpFMul)
		ri := b.Node(fmt.Sprintf("ri%d", t), clusched.OpFMul)
		ir := b.Node(fmt.Sprintf("ir%d", t), clusched.OpFMul)
		b.Edge(xr, rr, 0)
		b.Edge(xi, ii, 0)
		b.Edge(xr, ri, 0)
		b.Edge(xi, ir, 0)

		subR := b.Node(fmt.Sprintf("subR%d", t), clusched.OpFAdd)
		b.Edge(rr, subR, 0)
		b.Edge(ii, subR, 0)
		addI := b.Node(fmt.Sprintf("addI%d", t), clusched.OpFAdd)
		b.Edge(ri, addI, 0)
		b.Edge(ir, addI, 0)

		if sumR < 0 {
			sumR, sumI = subR, addI
			continue
		}
		nr := b.Node(fmt.Sprintf("accR%d", t), clusched.OpFAdd)
		b.Edge(sumR, nr, 0)
		b.Edge(subR, nr, 0)
		ni := b.Node(fmt.Sprintf("accI%d", t), clusched.OpFAdd)
		b.Edge(sumI, ni, 0)
		b.Edge(addI, ni, 0)
		sumR, sumI = nr, ni
	}
	stR := b.Node("stR", clusched.OpStore)
	b.Edge(sumR, stR, 0)
	b.Edge(idx, stR, 0)
	stI := b.Node("stI", clusched.OpStore)
	b.Edge(sumI, stI, 0)
	b.Edge(idx, stI, 0)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func main() {
	g := buildFIR(4)
	fmt.Printf("complex FIR loop: %v\n\n", g)
	fmt.Printf("%-12s %4s  %4s/%4s  %8s  %s\n", "config", "MII", "base", "repl", "speedup", "comms base->repl")
	const iters = 256
	for _, m := range clusched.PaperMachines() {
		base, err := clusched.CompileBaseline(g, m)
		if err != nil {
			log.Fatal(err)
		}
		repl, err := clusched.CompileReplicated(g, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %4d  %4d/%4d  %7.2fx  %d -> %d\n",
			m.Name, base.MII, base.II, repl.II,
			repl.Speedup(base, iters),
			base.Comms, repl.Comms)
	}

	// The unified machine bounds what any clustered configuration can do.
	u, err := clusched.CompileBaseline(g, clusched.UnifiedMachine(64))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %4d  %4d (upper bound)\n", "unified", u.MII, u.II)
}
