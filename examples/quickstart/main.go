// Quickstart: build a small loop by hand, compile it for a 4-cluster VLIW
// with and without instruction replication, and inspect the schedules.
//
// The loop is a toy stencil update:
//
//	for i := range a {
//	    idx := base + i*stride          // shared integer address arithmetic
//	    a[idx] = (x[idx] + y[idx]) * k
//	    b[idx] = (x[idx] - y[idx]) * k
//	    c[idx] = x[idx] * y[idx]
//	}
//
// The address value idx is consumed by every memory access, so when the
// partitioner spreads the three statements across clusters, idx must cross
// clusters — exactly the pattern the replication pass removes by
// recomputing idx locally.
package main

import (
	"context"
	"fmt"
	"log"

	"clusched"
)

func buildLoop() *clusched.Graph {
	b := clusched.NewLoop("quickstart")
	idx := b.Node("idx", clusched.OpIAdd)
	b.Edge(idx, idx, 1) // induction variable

	lx := b.Node("lx", clusched.OpLoad)
	ly := b.Node("ly", clusched.OpLoad)
	b.Edge(idx, lx, 0)
	b.Edge(idx, ly, 0)

	// Statement 1: (x+y)*k -> a[idx]
	add := b.Node("add", clusched.OpFAdd)
	b.Edge(lx, add, 0)
	b.Edge(ly, add, 0)
	m1 := b.Node("m1", clusched.OpFMul)
	b.Edge(add, m1, 0)
	s1 := b.Node("s1", clusched.OpStore)
	b.Edge(m1, s1, 0)
	b.Edge(idx, s1, 0)

	// Statement 2: (x-y)*k -> b[idx]
	sub := b.Node("sub", clusched.OpFAdd)
	b.Edge(lx, sub, 0)
	b.Edge(ly, sub, 0)
	m2 := b.Node("m2", clusched.OpFMul)
	b.Edge(sub, m2, 0)
	s2 := b.Node("s2", clusched.OpStore)
	b.Edge(m2, s2, 0)
	b.Edge(idx, s2, 0)

	// Statement 3: x*y -> c[idx]
	m3 := b.Node("m3", clusched.OpFMul)
	b.Edge(lx, m3, 0)
	b.Edge(ly, m3, 0)
	s3 := b.Node("s3", clusched.OpStore)
	b.Edge(m3, s3, 0)
	b.Edge(idx, s3, 0)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func main() {
	g := buildLoop()
	m := clusched.MustParseMachine("4c1b2l64r")
	fmt.Printf("loop %s on machine %s\n\n", g.Name, m)

	// The v2 entry point: a Backend (here the in-process engine) compiles
	// CompileJobs whose options are built with functional options. Swap
	// NewLocal for NewRemote(url) and nothing else changes.
	ctx := context.Background()
	backend := clusched.NewLocal()
	base, err := backend.Compile(ctx, clusched.CompileJob{Graph: g, Machine: m})
	if err != nil {
		log.Fatal(err)
	}
	repl, err := backend.Compile(ctx, clusched.CompileJob{
		Graph:   g,
		Machine: m,
		Opts:    clusched.NewOptions(clusched.WithReplication(true)),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline:    MII=%d II=%d length=%d comms=%d\n",
		base.MII, base.II, base.Length, base.Comms)
	fmt.Printf("replication: MII=%d II=%d length=%d comms=%d (removed %d, %d instances added)\n\n",
		repl.MII, repl.II, repl.Length, repl.Comms,
		repl.CommsBeforeReplication-repl.Comms, totalReplicated(repl))

	const iters = 1000
	fmt.Printf("modeled cycles for %d iterations: baseline %.0f, replication %.0f (speedup %.2fx)\n\n",
		iters, base.Schedule.CyclesFor(iters), repl.Schedule.CyclesFor(iters),
		repl.Speedup(base, iters))

	fmt.Println("replicated kernel:")
	fmt.Print(repl.Schedule.FormatKernel())
}

func totalReplicated(r *clusched.Result) int {
	n := 0
	for _, c := range r.Replicated {
		n += c
	}
	return n
}
