// Configsweep explores the machine design space for a single loop: how do
// cluster count, bus count and bus latency trade off, and where does
// instruction replication change the answer? This mirrors the paper's
// motivation study (Fig. 1): on bus-starved machines the achieved II is
// dominated by communications, and replication recovers most of the gap to
// the unified machine.
//
// The sweep submits every (machine, variant) pair to the local Backend in
// one go and collects the stream deterministically (clusched.Collect):
// outcomes come back in submission order, so the table prints identically
// however the compilations were scheduled.
package main

import (
	"context"
	"fmt"
	"log"

	"clusched"
)

// buildLoop synthesizes a moderately comm-bound stencil loop (three shared
// address values feeding six short FP chains).
func buildLoop() *clusched.Graph {
	b := clusched.NewLoop("sweep")
	var addr [3]int
	for i := range addr {
		addr[i] = b.Node(fmt.Sprintf("i%d", i), clusched.OpIAdd)
		if i > 0 {
			b.Edge(addr[i-1], addr[i], 0)
		}
	}
	b.Edge(addr[0], addr[0], 1)
	for c := 0; c < 6; c++ {
		ld := b.Node(fmt.Sprintf("ld%d", c), clusched.OpLoad)
		b.Edge(addr[c%3], ld, 0)
		f1 := b.Node(fmt.Sprintf("f%d_1", c), clusched.OpFMul)
		b.Edge(ld, f1, 0)
		b.Edge(addr[(c+1)%3], f1, 0)
		f2 := b.Node(fmt.Sprintf("f%d_2", c), clusched.OpFAdd)
		b.Edge(f1, f2, 0)
		st := b.Node(fmt.Sprintf("st%d", c), clusched.OpStore)
		b.Edge(f2, st, 0)
		b.Edge(addr[c%3], st, 0)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func main() {
	g := buildLoop()
	fmt.Printf("sweeping %v\n\n", g)

	configs := []string{
		"2c1b1l64r", "2c1b2l64r", "2c2b2l64r", "2c2b4l64r",
		"4c1b1l64r", "4c1b2l64r", "4c2b2l64r", "4c2b4l64r", "4c4b4l64r",
	}
	const iters = 512

	// One batch: the unified upper bound, then (baseline, replicated) for
	// every clustered configuration.
	jobs := []clusched.CompileJob{{Graph: g, Machine: clusched.UnifiedMachine(64)}}
	for _, name := range configs {
		m, err := clusched.ParseMachine(name)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs,
			clusched.CompileJob{Graph: g, Machine: m},
			clusched.CompileJob{Graph: g, Machine: m, Opts: clusched.NewOptions(clusched.WithReplication(true))})
	}
	outcomes, err := clusched.Collect(context.Background(), clusched.NewLocal(), jobs)
	if err != nil {
		log.Fatal(err)
	}

	u := outcomes[0].Result
	uCycles := u.Schedule.CyclesFor(iters)
	fmt.Printf("unified upper bound: II=%d, %.0f cycles for %d iterations\n\n", u.II, uCycles, iters)

	fmt.Printf("%-10s  %9s  %9s  %9s  %16s\n", "config", "base II", "repl II", "repl gain", "% of unified perf")
	for i, name := range configs {
		base, repl := outcomes[1+2*i].Result, outcomes[2+2*i].Result
		gain := repl.Speedup(base, iters)
		ofUnified := 100 * uCycles / repl.Schedule.CyclesFor(iters)
		fmt.Printf("%-10s  %9d  %9d  %8.2fx  %15.1f%%\n", name, base.II, repl.II, gain, ofUnified)
	}
}
