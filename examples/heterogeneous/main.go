// Heterogeneous: the paper's machines are homogeneous, but §2.1 notes the
// algorithms extend directly to heterogeneous clusters. This example builds
// an asymmetric 2-cluster DSP-style machine — an address/integer cluster
// and a floating-point datapath cluster — and shows that the partitioner
// splits a loop by capability while replication still removes the
// cross-cluster address traffic.
package main

import (
	"fmt"
	"log"

	"clusched"
)

func main() {
	m, err := clusched.HeteroMachine(1 /*bus*/, 2 /*cycles*/, 32, [][3]int{
		{3, 1, 2}, // cluster 0: 3 int ALUs, 1 FP unit, 2 memory ports
		{1, 3, 2}, // cluster 1: 1 int ALU, 3 FP units, 2 memory ports
	})
	if err != nil {
		log.Fatal(err)
	}

	// A stencil loop: integer address arithmetic feeding three FP chains.
	b := clusched.NewLoop("hetero_stencil")
	i0 := b.Node("i0", clusched.OpIAdd)
	b.Edge(i0, i0, 1)
	i1 := b.Node("i1", clusched.OpIAdd)
	b.Edge(i0, i1, 0)
	i2 := b.Node("i2", clusched.OpIMul)
	b.Edge(i1, i2, 0)
	for c := 0; c < 3; c++ {
		ld := b.Node(fmt.Sprintf("ld%d", c), clusched.OpLoad)
		b.Edge(i2, ld, 0)
		f1 := b.Node(fmt.Sprintf("f%d_1", c), clusched.OpFMul)
		b.Edge(ld, f1, 0)
		b.Edge(i1, f1, 0)
		f2 := b.Node(fmt.Sprintf("f%d_2", c), clusched.OpFAdd)
		b.Edge(f1, f2, 0)
		st := b.Node(fmt.Sprintf("st%d", c), clusched.OpStore)
		b.Edge(f2, st, 0)
		b.Edge(i2, st, 0)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	base, err := clusched.CompileBaseline(g, m)
	if err != nil {
		log.Fatal(err)
	}
	repl, err := clusched.CompileReplicated(g, m)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine %s (asymmetric clusters)\n", m.Name)
	fmt.Printf("baseline:    II=%d comms=%d\n", base.II, base.Comms)
	fmt.Printf("replication: II=%d comms=%d (%d instances added)\n\n",
		repl.II, repl.Comms, totalReplicated(repl))

	counts := repl.Placement.ClassCounts()
	fmt.Println("instances per cluster (int/fp/mem):")
	for c, cc := range counts {
		fmt.Printf("  cluster %d: %d/%d/%d\n", c, cc[0], cc[1], cc[2])
	}
	fmt.Println()
	fmt.Print(repl.Schedule.FormatKernel())
}

func totalReplicated(r *clusched.Result) int {
	n := 0
	for _, c := range r.Replicated {
		n += c
	}
	return n
}
