// Streaming: compile a batch through the clusched.Backend interface and
// consume the results as they finish, not when the batch ends.
//
// The same code drives both backends. By default it runs on the in-process
// engine (clusched.NewLocal); with -remote it speaks to a clusched-serve
// instance (clusched.NewRemote), where Stream rides the service's NDJSON
// push endpoint — each verified result arrives the moment the server
// finishes it, with no polling:
//
//	go run ./examples/streaming
//	clusched-serve -addr :8357 &
//	go run ./examples/streaming -remote http://localhost:8357
//
// The completion log prints in finish order (the stream's order); the
// final table is the deterministic index-ordered collect of the same
// outcomes, rebuilt from the stream without a second compilation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"clusched"
)

func main() {
	remote := flag.String("remote", "", "compile on a clusched-serve instance at this base URL instead of in-process")
	flag.Parse()

	ctx := context.Background()
	var backend clusched.Backend = clusched.NewLocal(clusched.WithWorkers(2))
	where := "in-process engine"
	if *remote != "" {
		client := clusched.NewRemote(*remote)
		if err := client.Health(ctx); err != nil {
			log.Fatalf("service at %s unreachable: %v", *remote, err)
		}
		backend = client
		where = *remote + " (NDJSON push)"
	}

	// A batch: every tomcatv workload loop on the paper's headline
	// machine, with and without replication.
	m := clusched.MustParseMachine("4c2b2l64r")
	repl := clusched.NewOptions(clusched.WithReplication(true))
	var jobs []clusched.CompileJob
	for _, l := range clusched.BenchmarkLoops("tomcatv") {
		jobs = append(jobs,
			clusched.CompileJob{Graph: l.Graph, Machine: m},
			clusched.CompileJob{Graph: l.Graph, Machine: m, Opts: repl})
	}
	fmt.Printf("streaming %d jobs from the %s\n\n", len(jobs), where)

	// Consume the stream: outcomes arrive in completion order, tagged with
	// their job's index, so incremental consumers (progress bars, early
	// aggregation, result pipelines) never wait for the stragglers.
	outcomes := make([]clusched.CompileOutcome, len(jobs))
	for i, out := range backend.Stream(ctx, jobs) {
		outcomes[i] = out
		if out.Err != nil {
			fmt.Printf("  %-12s FAILED: %v\n", jobs[i].Graph.Name, out.Err)
			continue
		}
		cached := ""
		if out.CacheHit {
			cached = " (cached)"
		}
		fmt.Printf("  %-12s II=%-3d comms=%-3d%s\n", jobs[i].Graph.Name, out.Result.II, out.Result.Comms, cached)
	}

	// The deterministic view of the same outcomes, index-aligned.
	fmt.Printf("\n%-12s  %8s  %8s\n", "loop", "base II", "repl II")
	failed := false
	for i := 0; i < len(outcomes); i += 2 {
		base, rep := outcomes[i], outcomes[i+1]
		if base.Err != nil || rep.Err != nil {
			failed = true
			continue
		}
		fmt.Printf("%-12s  %8d  %8d\n", jobs[i].Graph.Name, base.Result.II, rep.Result.II)
	}
	if failed {
		os.Exit(1)
	}
}
