package clusched

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"clusched/internal/service"
)

// startService spins an in-process compilation service for client tests.
func startService(t *testing.T, cfg service.Config) (*Client, *service.Server) {
	t.Helper()
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	c := NewClient(ts.URL)
	c.PollInterval = 5 * time.Millisecond
	return c, s
}

func TestClientCompile(t *testing.T) {
	c, _ := startService(t, service.Config{})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	loops := BenchmarkLoops("tomcatv")
	m := MustParseMachine("4c2b2l64r")
	opts := Options{Replicate: true}

	// Local reference.
	want, err := CompileReplicated(loops[0].Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	res, hit, err := c.Compile(ctx, loops[0].Graph, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.II != want.II || res.Length != want.Length || res.Comms != want.Comms {
		t.Fatalf("remote result diverges from local: II %d/%d", res.II, want.II)
	}
	if res.Schedule == nil || res.Placement == nil {
		t.Fatal("remote result lacks schedule or placement")
	}
	// The decoded schedule supports downstream consumers.
	if _, err := ExpandPipeline(res.Schedule); err != nil {
		t.Fatalf("remote schedule does not expand: %v", err)
	}
	// Second identical compile hits the service cache.
	_, hit, err = c.Compile(ctx, loops[0].Graph, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second remote compile not served from cache")
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 2 || st.JobsCompiled != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestClientBatch(t *testing.T) {
	c, _ := startService(t, service.Config{})
	ctx := context.Background()

	loops := BenchmarkLoops("hydro2d")[:10]
	m := MustParseMachine("2c1b2l64r")
	jobs := make([]CompileJob, len(loops))
	for i, l := range loops {
		jobs[i] = CompileJob{Graph: l.Graph, Machine: m, Opts: Options{Replicate: true}}
	}
	id, err := c.SubmitBatch(ctx, jobs, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitBatch(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Err != nil {
		t.Fatalf("batch ended %s (%v)", st.State, st.Err)
	}
	if len(st.Outcomes) != len(jobs) {
		t.Fatalf("%d outcomes for %d jobs", len(st.Outcomes), len(jobs))
	}
	for i, o := range st.Outcomes {
		if o.Err != nil || o.Result == nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if o.Result.Loop.Fingerprint() != jobs[i].Graph.Fingerprint() {
			t.Fatalf("job %d: outcome misaligned", i)
		}
	}
}

func TestClientErrors(t *testing.T) {
	c, _ := startService(t, service.Config{})
	ctx := context.Background()

	if _, err := c.Status(ctx, "job-404"); err == nil {
		t.Fatal("unknown ticket did not error")
	}
	if err := c.Cancel(ctx, "job-404"); err == nil {
		t.Fatal("cancel of unknown ticket did not error")
	}
	// A dead endpoint surfaces as a transport error, not a hang.
	dead := NewClient("http://127.0.0.1:1")
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := dead.Health(cctx); err == nil {
		t.Fatal("dead endpoint reported healthy")
	}
}

func TestClientQueueFullTyped(t *testing.T) {
	// Gate the runner with an empty workers pool trick is internal; here
	// just overfill a depth-1 queue with slow-ish batches and accept that
	// at least the typed error path is exercised when it happens.
	c, s := startService(t, service.Config{Runners: 1, QueueDepth: 1, Workers: 1})
	ctx := context.Background()
	loops := BenchmarkLoops("fpppp")
	m := MustParseMachine("4c2b2l64r")
	var jobs []CompileJob
	for _, l := range loops {
		jobs = append(jobs, CompileJob{Graph: l.Graph, Machine: m, Opts: Options{Replicate: true}})
	}
	var sawFull bool
	for i := 0; i < 50 && !sawFull; i++ {
		_, err := c.SubmitBatch(ctx, jobs, 0)
		var full *QueueFullError
		if errors.As(err, &full) {
			if full.RetryAfter <= 0 {
				t.Fatal("queue-full error without retry hint")
			}
			sawFull = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Skip("queue never filled on this machine; admission control is covered by service tests")
	}
	_ = s
}
