package clusched

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"clusched/internal/service"
	"clusched/internal/wire"
)

// startService spins an in-process compilation service for client tests.
func startService(t *testing.T, cfg service.Config) (*Client, *service.Server) {
	t.Helper()
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	c := NewClient(ts.URL)
	c.PollInterval = 5 * time.Millisecond
	return c, s
}

func TestClientCompile(t *testing.T) {
	c, _ := startService(t, service.Config{})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	loops := BenchmarkLoops("tomcatv")
	m := MustParseMachine("4c2b2l64r")
	opts := Options{Replicate: true}

	// Local reference.
	want, err := CompileReplicated(loops[0].Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	job := CompileJob{Graph: loops[0].Graph, Machine: m, Opts: opts}
	res, err := c.Compile(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.II != want.II || res.Length != want.Length || res.Comms != want.Comms {
		t.Fatalf("remote result diverges from local: II %d/%d", res.II, want.II)
	}
	if res.Schedule == nil || res.Placement == nil {
		t.Fatal("remote result lacks schedule or placement")
	}
	// The decoded schedule supports downstream consumers.
	if _, err := ExpandPipeline(res.Schedule); err != nil {
		t.Fatalf("remote schedule does not expand: %v", err)
	}
	// Second identical compile hits the service cache (Do exposes the
	// cache-hit flag the Backend-level Compile elides).
	out, err := c.Do(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if out.Err != nil || !out.CacheHit {
		t.Fatalf("second remote compile not served from cache: %+v", out)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 2 || st.JobsCompiled != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestClientBatch(t *testing.T) {
	c, _ := startService(t, service.Config{})
	ctx := context.Background()

	loops := BenchmarkLoops("hydro2d")[:10]
	m := MustParseMachine("2c1b2l64r")
	jobs := make([]CompileJob, len(loops))
	for i, l := range loops {
		jobs[i] = CompileJob{Graph: l.Graph, Machine: m, Opts: Options{Replicate: true}}
	}
	id, err := c.SubmitBatch(ctx, jobs, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitBatch(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Err != nil {
		t.Fatalf("batch ended %s (%v)", st.State, st.Err)
	}
	if len(st.Outcomes) != len(jobs) {
		t.Fatalf("%d outcomes for %d jobs", len(st.Outcomes), len(jobs))
	}
	for i, o := range st.Outcomes {
		if o.Err != nil || o.Result == nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if o.Result.Loop.Fingerprint() != jobs[i].Graph.Fingerprint() {
			t.Fatalf("job %d: outcome misaligned", i)
		}
	}
}

func TestClientErrors(t *testing.T) {
	c, _ := startService(t, service.Config{})
	ctx := context.Background()

	if _, err := c.Status(ctx, "job-404"); err == nil {
		t.Fatal("unknown ticket did not error")
	}
	if err := c.Cancel(ctx, "job-404"); err == nil {
		t.Fatal("cancel of unknown ticket did not error")
	}
	// A dead endpoint surfaces as a transport error, not a hang.
	dead := NewClient("http://127.0.0.1:1")
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := dead.Health(cctx); err == nil {
		t.Fatal("dead endpoint reported healthy")
	}
}

func TestClientQueueFullTyped(t *testing.T) {
	// Gate the runner with an empty workers pool trick is internal; here
	// just overfill a depth-1 queue with slow-ish batches and accept that
	// at least the typed error path is exercised when it happens.
	c, s := startService(t, service.Config{Runners: 1, QueueDepth: 1, Workers: 1})
	ctx := context.Background()
	loops := BenchmarkLoops("fpppp")
	m := MustParseMachine("4c2b2l64r")
	var jobs []CompileJob
	for _, l := range loops {
		jobs = append(jobs, CompileJob{Graph: l.Graph, Machine: m, Opts: Options{Replicate: true}})
	}
	var sawFull bool
	for i := 0; i < 50 && !sawFull; i++ {
		_, err := c.SubmitBatch(ctx, jobs, 0)
		var full *QueueFullError
		if errors.As(err, &full) {
			if full.RetryAfter <= 0 {
				t.Fatal("queue-full error without retry hint")
			}
			sawFull = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Skip("queue never filled on this machine; admission control is covered by service tests")
	}
	_ = s
}

// TestStreamEarlyBreakCancelsRemoteTicket: walking away from a remote
// stream must cancel the server-side ticket — the Backend contract says
// early stop abandons the remaining work, and leaving the server to
// compile a batch nobody reads would break that remotely.
func TestStreamEarlyBreakCancelsRemoteTicket(t *testing.T) {
	loops := BenchmarkLoops("mgrid")
	m := MustParseMachine("4c2b2l64r")
	jobs := make([]CompileJob, len(loops))
	for i, l := range loops {
		jobs[i] = CompileJob{Graph: l.Graph, Machine: m}
	}
	// Gate the second job so the batch is provably still running when the
	// consumer breaks.
	gate := newGateStore(jobs[1].Graph.Name)
	c, s := startService(t, service.Config{Workers: 1, Store: gate})

	for range c.Stream(context.Background(), jobs) {
		break
	}
	gate.release(jobs[1].Graph.Name)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := s.Stats(); st.Canceled >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned ticket never cancelled server-side: %+v", s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamIdleTimeoutOnWedgedServer: a server that opens the stream and
// then goes silent must not hang Stream forever — the inter-frame
// watchdog (bound to the client timeout) cuts the connection and stamps
// the undelivered jobs.
func TestStreamIdleTimeoutOnWedgedServer(t *testing.T) {
	wedged := make(chan struct{})
	defer close(wedged)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"t1"}` + "\n"))
	})
	mux.HandleFunc("GET /batch/t1/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(`{"type":"hello","schema":3,"id":"t1","total":1}` + "\n"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		select { // silence: no outcome, no done, no close
		case <-wedged:
		case <-r.Context().Done():
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := NewRemote(ts.URL, WithTimeout(100*time.Millisecond))
	loops := BenchmarkLoops("tomcatv")[:1]
	jobs := []CompileJob{{Graph: loops[0].Graph, Machine: MustParseMachine("4c2b2l64r")}}
	done := make(chan error, 1)
	go func() {
		var got error
		for _, out := range c.Stream(context.Background(), jobs) {
			got = out.Err
		}
		done <- got
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "idle") {
			t.Fatalf("want an idle-timeout error, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Stream hung on a wedged server")
	}
}

// TestStreamUnknownTicket404IsNotEndpointFallback: a modern server's JSON
// 404 for a ticket it no longer knows is a real error, not a cue to fall
// back to polling the same nonexistent ticket.
func TestStreamUnknownTicket404IsNotEndpointFallback(t *testing.T) {
	var polled atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"gone"}` + "\n"))
	})
	mux.HandleFunc("GET /batch/gone/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"unknown ticket \"gone\""}` + "\n"))
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		polled.Store(true)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"unknown ticket"}` + "\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := NewRemote(ts.URL, WithTimeout(time.Second))
	loops := BenchmarkLoops("tomcatv")[:1]
	jobs := []CompileJob{{Graph: loops[0].Graph, Machine: MustParseMachine("4c2b2l64r")}}
	for _, out := range c.Stream(context.Background(), jobs) {
		if out.Err == nil || !strings.Contains(out.Err.Error(), "unknown ticket") {
			t.Fatalf("want the unknown-ticket error, got %v", out.Err)
		}
	}
	if polled.Load() {
		t.Fatal("client fell back to polling a ticket the server said it does not know")
	}
}

// TestWaitBatchDeadlineCap: once the server reports a ticket deadline,
// WaitBatch must not poll a doomed ticket forever — past deadline + grace
// it makes one final probe and gives up with an error naming the state.
func TestWaitBatchDeadlineCap(t *testing.T) {
	var polls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		polls.Add(1)
		// Running, with a deadline that already expired past the grace
		// window: the cap timer fires before the first sleep finishes.
		fmt.Fprintf(w, `{"id":"doomed","state":"running","num_jobs":1,"deadline_ms":%d}`+"\n",
			time.Now().Add(-10*time.Second).UnixMilli())
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	_, err := c.WaitBatch(ctx, "doomed")
	if err == nil || !strings.Contains(err.Error(), "past its deadline") {
		t.Fatalf("want the past-deadline error, got %v", err)
	}
	if got := polls.Load(); got > 3 {
		t.Fatalf("WaitBatch kept polling a doomed ticket: %d probes", got)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("WaitBatch took %v to give up on an expired ticket", elapsed)
	}
}

// TestWaitBatchHonorsRetryAfterHint: the server's retry_after_ms wins over
// the client's own (here deliberately huge) poll interval, so a hinted
// ticket resolves promptly even with a misconfigured client schedule.
func TestWaitBatchHonorsRetryAfterHint(t *testing.T) {
	var polls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if polls.Add(1) == 1 {
			fmt.Fprintln(w, `{"id":"tk","state":"running","num_jobs":0,"retry_after_ms":60}`)
			return
		}
		fmt.Fprintln(w, `{"id":"tk","state":"done","num_jobs":0}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.PollInterval = time.Hour // the hint must override this
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	st, err := c.WaitBatch(ctx, "tk")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != wire.StateDone {
		t.Fatalf("want done, got %q", st.State)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hinted poll took %v; the Retry-After hint did not override PollInterval", elapsed)
	}
}
