// Package clusched is a modulo-scheduling compiler backend for clustered
// VLIW microarchitectures with selective instruction replication, a
// from-scratch reproduction of Aletà, Codina, González and Kaeli,
// "Instruction Replication for Clustered Microarchitectures" (MICRO-36,
// 2003).
//
// The pipeline partitions a loop's data dependence graph across clusters
// (multilevel partitioning with slack-weighted edges), removes excess
// inter-cluster communications by replicating cheap instruction subgraphs
// into the consuming clusters, and produces a verified modulo schedule.
//
// The canonical API is the Backend interface: Compile for one job, Stream
// for a batch consumed incrementally as results finish, Collect for
// deterministic index-ordered batch output. NewLocal builds the in-process
// backend (a bounded worker pool with a shared result cache); NewRemote
// builds the client for a clusched-serve instance, where Stream rides the
// service's NDJSON push endpoint, delivering each verified result the
// moment the server finishes it. Where the compilation runs is
// configuration, not a code path.
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
//
// Quick start:
//
//	b := clusched.NewLoop("saxpy")
//	x := b.Node("x", clusched.OpLoad)
//	y := b.Node("y", clusched.OpLoad)
//	m := b.Node("m", clusched.OpFMul)
//	a := b.Node("a", clusched.OpFAdd)
//	s := b.Node("s", clusched.OpStore)
//	b.Edge(x, m, 0)
//	b.Edge(y, a, 0)
//	b.Edge(m, a, 0)
//	b.Edge(a, s, 0)
//	g, _ := b.Build()
//
//	mach := clusched.MustParseMachine("4c2b2l64r")
//	opts := clusched.NewOptions(clusched.WithReplication(true))
//	res, _ := clusched.NewLocal().Compile(context.Background(),
//		clusched.CompileJob{Graph: g, Machine: mach, Opts: opts})
//	fmt.Println(res.II, res.Schedule.FormatKernel())
package clusched

import (
	"context"
	"io"

	"clusched/internal/codegen"
	"clusched/internal/core"
	"clusched/internal/ddg"
	"clusched/internal/driver"
	"clusched/internal/machine"
	"clusched/internal/sched"
	"clusched/internal/telemetry"
	"clusched/internal/workload"
)

// Graph is a loop-body data dependence graph; build one with NewLoop or
// decode the text format with ParseLoops.
type Graph = ddg.Graph

// Builder constructs loop DDGs incrementally.
type Builder = ddg.Builder

// OpKind identifies an operation; the set mirrors the paper's latency table.
type OpKind = ddg.OpKind

// Operation kinds (latency in parentheses, from the paper's Table 1).
const (
	OpIAdd  = ddg.OpIAdd  // integer arithmetic (1)
	OpIMul  = ddg.OpIMul  // integer multiply/abs (2)
	OpIDiv  = ddg.OpIDiv  // integer divide/sqrt (6)
	OpFAdd  = ddg.OpFAdd  // FP arithmetic (3)
	OpFMul  = ddg.OpFMul  // FP multiply/abs (6)
	OpFDiv  = ddg.OpFDiv  // FP divide/sqrt (18)
	OpLoad  = ddg.OpLoad  // load from the shared memory (2)
	OpStore = ddg.OpStore // store to the shared memory (2)
)

// NewLoop returns a Builder for a loop body with the given name.
func NewLoop(name string) *Builder { return ddg.NewBuilder(name) }

// ParseLoops decodes loops from the line-oriented text format (see
// internal/ddg and the loopgen command for the grammar).
func ParseLoops(r io.Reader) ([]*Graph, error) { return ddg.ParseText(r) }

// Machine describes a clustered VLIW configuration (wcxbylzr in the
// paper's notation).
type Machine = machine.Config

// ParseMachine decodes a configuration string such as "4c2b2l64r" or
// "unified".
func ParseMachine(s string) (Machine, error) { return machine.Parse(s) }

// MustParseMachine is ParseMachine but panics on error.
func MustParseMachine(s string) Machine { return machine.MustParse(s) }

// UnifiedMachine returns the monolithic 12-issue machine with the given
// total register count.
func UnifiedMachine(regs int) Machine { return machine.Unified(regs) }

// HeteroMachine builds a clustered machine with per-cluster functional-unit
// counts, indexed [cluster][class] with classes ordered int, fp, mem — the
// heterogeneous extension the paper's §2.1 mentions.
func HeteroMachine(buses, busLat, regsPerCluster int, fu [][3]int) (Machine, error) {
	return machine.NewHetero(buses, busLat, regsPerCluster, fu)
}

// PaperMachines returns the six clustered configurations of the paper's
// evaluation.
func PaperMachines() []Machine { return machine.PaperConfigs() }

// Options selects the pipeline variant; the zero value is the baseline
// scheduler without replication.
type Options = core.Options

// Result is a compiled loop: achieved II, schedule, replication statistics
// and cause attribution for II increases.
type Result = core.Result

// Cause classifies II increases (bus, recurrences, registers).
type Cause = core.Cause

// Cause values for Result.IIIncreases.
const (
	CauseBus        = core.CauseBus
	CauseRecurrence = core.CauseRecurrence
	CauseRegisters  = core.CauseRegisters
	NumCauses       = core.NumCauses
)

// Schedule is a verified modulo schedule.
type Schedule = sched.Schedule

// Compile runs one loop through the scheduling strategy opts.Strategy
// selects; the zero value selects the paper's algorithm without
// replication.
func Compile(g *Graph, m Machine, opts Options) (*Result, error) {
	return core.Compile(g, m, opts)
}

// CompileWith compiles under a named scheduling strategy — the one-call
// form of picking an algorithm. Registered strategies (see Strategies):
//
//	paper    multilevel partition + selective replication (the paper)
//	unified  single-cluster upper bound on the monolithic equivalent
//	uas      greedy unified assign-and-schedule (no partition pass)
//	moddist  round-robin modulo distribution (naive baseline)
func CompileWith(strategy string, g *Graph, m Machine, opts Options) (*Result, error) {
	return core.CompileWith(strategy, g, m, opts)
}

// Strategies lists the registered scheduling strategies, sorted by name.
func Strategies() []string { return core.Strategies() }

// StrategyDescription returns a strategy's one-line description ("" for
// unknown names).
func StrategyDescription(name string) string { return core.StrategyDescription(name) }

// CompileBaseline compiles with the state-of-the-art base scheduler
// (partitioning only, no replication).
//
// Deprecated: pick the algorithm through the strategy registry instead —
// CompileWith("paper", g, m, Options{}) is the same compilation with the
// choice spelled out. Kept as a thin wrapper for source compatibility.
func CompileBaseline(g *Graph, m Machine) (*Result, error) {
	return core.CompileBaseline(g, m)
}

// CompileReplicated compiles with the paper's replication pass enabled.
//
// Deprecated: use CompileWith("paper", g, m, Options{Replicate: true}) so
// the algorithm choice is explicit. Kept as a thin wrapper for source
// compatibility.
func CompileReplicated(g *Graph, m Machine) (*Result, error) {
	return core.CompileReplicated(g, m)
}

// Compiler is the in-process Backend: a concurrent batch-compilation
// engine with a bounded worker pool, a streaming batch API with
// deterministic collection, an LRU result cache keyed on (graph
// fingerprint, machine, options) with hit/miss accounting, aggregate error
// reporting, and optional progress callbacks. One Compiler is safe for
// concurrent use and meant to be shared; NewLocal is the v2 constructor.
type Compiler = driver.Compiler

// CompilerConfig parameterizes NewCompiler; the zero value gives
// GOMAXPROCS workers and a default-sized cache.
type CompilerConfig = driver.Config

// CompileJob is one batch compilation request: a loop DDG, a machine and
// pipeline options.
type CompileJob = driver.Job

// CompileOutcome is the outcome of one CompileJob: exactly one of Result
// and Err is set, plus whether it was served from the cache.
type CompileOutcome = driver.Outcome

// BatchError aggregates every failed job of a batch compilation.
type BatchError = driver.BatchError

// CacheStats reports the engine's result-cache effectiveness.
type CacheStats = driver.CacheStats

// Store is the persistent second-level result cache under a local
// backend's in-memory LRU (see CompilerConfig.Store); clusched-serve's
// disk cache implements it.
type Store = driver.Store

// NewCompiler builds a batch-compilation engine.
func NewCompiler(cfg CompilerConfig) *Compiler { return driver.New(cfg) }

// Trace records a compilation's execution timeline — queue waits, cache
// lookups, passes, II attempts, speculative lanes — as spans on named
// tracks. Attach one to a local backend with WithTrace (or to a single
// CompileJob via its Trace field) and export it with WriteJSON as Chrome
// trace-event JSON, viewable in chrome://tracing or Perfetto. A nil *Trace
// disables recording with zero overhead; Trace does not participate in
// cache identity.
type Trace = telemetry.Trace

// NewTrace starts an empty trace; its epoch (time zero) is the call.
func NewTrace() *Trace { return telemetry.NewTrace() }

// CompileAll compiles every loop for every machine on a fresh local
// backend with default settings and returns the results machine-major: the
// result for loops[i] on machines[j] is at index j*len(loops)+i. The order
// is deterministic regardless of scheduling. When some compilations fail,
// their slots are nil and the returned error is a *BatchError aggregating
// them; the other results are still valid. Callers wanting a persistent
// cache, a custom worker count, progress callbacks or incremental results
// should build a Backend (NewLocal, NewRemote) and use Stream or Collect.
func CompileAll(loops []*Loop, machines []Machine, opts Options) ([]*Result, error) {
	jobs := make([]CompileJob, 0, len(loops)*len(machines))
	for _, m := range machines {
		for _, l := range loops {
			jobs = append(jobs, CompileJob{Graph: l.Graph, Machine: m, Opts: opts})
		}
	}
	if len(jobs) == 0 {
		return nil, nil
	}
	// The engine is throwaway, so bound its cache to the batch: large
	// enough that duplicate loops hit, never larger than the work.
	outcomes, err := Collect(context.Background(), NewLocal(WithCacheSize(len(jobs))), jobs)
	results := make([]*Result, len(outcomes))
	for i := range outcomes {
		results[i] = outcomes[i].Result
	}
	return results, err
}

// Pipeline is an expanded software pipeline: prolog, MVE-unrolled kernel
// and epilog with physical register assignments.
type Pipeline = codegen.Program

// ExpandPipeline expands a compiled schedule into software-pipelined VLIW
// code (prolog / kernel / epilog with modulo variable expansion).
func ExpandPipeline(s *Schedule) (*Pipeline, error) { return codegen.Expand(s) }

// Loop is one workload loop with profile weights.
type Loop = workload.Loop

// SPECfp95 returns the synthetic 678-loop evaluation workload.
func SPECfp95() []*Loop { return workload.SPECfp95() }

// Benchmarks returns the workload program names in presentation order.
func Benchmarks() []string { return workload.Benchmarks() }

// BenchmarkLoops returns the loops of one workload program.
func BenchmarkLoops(bench string) []*Loop { return workload.LoopsFor(bench) }
